#include "core/session_workloads.hpp"

#include <chrono>
#include <cstring>
#include <mutex>
#include <vector>

#include "components/app_assembly.hpp"
#include "components/lu_workload.hpp"
#include "core/instrumented_app.hpp"
#include "core/trace_export.hpp"
#include "mpp/runtime.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace core {
namespace {

void fnv_byte(std::uint64_t& h, std::uint8_t b) {
  h ^= b;
  h *= 1099511628211ull;
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) fnv_byte(h, static_cast<std::uint8_t>(v >> (8 * b)));
}

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_u64(h, bits);
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// The fig01 configuration scaled down (the prediction bench's tiny_config
/// shape): small grids keep a 64-session soak tractable on one box.
components::AppConfig session_amr_config(const SessionScenario& sc) {
  components::AppConfig cfg;
  cfg.mesh.domain = amr::Box{0, 0, sc.nx - 1, sc.ny - 1};
  cfg.mesh.max_levels = 3;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 12;
  cfg.mesh.cluster = amr::ClusterParams{0.75, 4, 0};
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / sc.nx, 1.0 / sc.ny};
  cfg.driver = components::DriverConfig{sc.steps, 0.4, 0};
  cfg.flux_impl = "GodunovFlux";
  return cfg;
}

/// FNV over one rank's local density field, in (level, patch id, j, i)
/// order — local_data() is a std::map so iteration order is the patch id
/// order, deterministic for a fixed decomposition.
std::uint64_t rank_density_digest(amr::Hierarchy& h) {
  std::uint64_t d = kFnvBasis;
  for (int l = 0; l < h.num_levels(); ++l) {
    for (auto& [id, data] : h.level(l).local_data()) {
      fnv_u64(d, static_cast<std::uint64_t>(l));
      fnv_u64(d, static_cast<std::uint64_t>(id));
      const amr::Box box = h.level(l).patch(id).box;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i)
          fnv_double(d, data(i, j, euler::kRho));
    }
  }
  return d;
}

SessionResult run_amr_session(SessionHandle& handle, const SessionScenario& sc) {
  const components::AppConfig cfg = session_amr_config(sc);
  mpp::RunOptions opts;
  opts.net = mpp::NetworkModel::classic_cluster();
  if (!sc.fault_plan.empty()) {
    opts.faults = mpp::FaultSpec::parse(sc.fault_plan);
    opts.faults.seed = sc.seed;
  }

  // Ranks are SCMD threads of this process: per-rank digests land in a
  // rank-indexed slot and combine in rank order afterwards — no
  // reduction needed, and the combination is decomposition-stable.
  std::vector<std::uint64_t> rank_digests(static_cast<std::size_t>(sc.ranks), 0);
  std::vector<std::uint64_t> rank_lines(static_cast<std::size_t>(sc.ranks), 0);

  const auto t0 = std::chrono::steady_clock::now();
  mpp::Runtime::run(sc.ranks, opts, [&](mpp::Comm& world) {
    // Worker lanes are configured programmatically: CCAPERF_THREADS is
    // process-global and concurrent sessions would race on it.
    ccaperf::set_rank_pool_threads(sc.threads);
    InstrumentedApp app = assemble_instrumented_app(world, cfg);
    if (sc.trace) {
      app.registry().set_trace_capacity(sc.trace_events);
      app.registry().set_tracing(true);
      app.tau->sync_shard_tracing();
    }
    app.mastermind->set_telemetry_session(handle.name());
    // One sink per rank: HubSinkBuf buffers per producer, so concurrent
    // ranks never interleave partial lines.
    std::ostream& sink = handle.make_sink();
    auto* tport =
        app.fw().services("mastermind").provided_as<TelemetryPort>("telemetry");
    tport->start_telemetry(sink, sc.telemetry_interval);

    app.fw().services("driver").provided_as<components::GoPort>("go")->go();

    auto* mesh = app.fw().services("driver").get_port_as<components::MeshPort>("mesh");
    rank_digests[static_cast<std::size_t>(world.rank())] =
        rank_density_digest(mesh->hierarchy());
    tport->stop_telemetry();
    rank_lines[static_cast<std::size_t>(world.rank())] = tport->telemetry_lines();
    if (sc.trace) {
      handle.add_trace(collect_rank_trace(app.registry(), world.rank()));
      if (tau::RegistryShards* sh = app.tau->shards(); sh->lanes() > 1)
        for (int t = 1; t < sh->lanes(); ++t)
          handle.add_trace(collect_rank_trace(sh->shard(t), world.rank(), t));
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  SessionResult r;
  r.physics_digest = kFnvBasis;
  for (const std::uint64_t d : rank_digests) fnv_u64(r.physics_digest, d);
  for (const std::uint64_t n : rank_lines) r.telemetry_lines += n;
  r.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return r;
}

SessionResult run_lu_session(SessionHandle& handle, const SessionScenario& sc) {
  // Single-rank mini assembly, the KernelRig shape: Mastermind + TAU +
  // the LU component behind its proxy.
  cca::ComponentRepository repo;
  repo.register_class("TauMeasurement",
                      [] { return std::make_unique<TauMeasurementComponent>(); });
  repo.register_class("Mastermind",
                      [] { return std::make_unique<MastermindComponent>(); });
  repo.register_class("LuFactor", [] {
    return std::make_unique<components::LuFactorComponent>();
  });
  repo.register_class("LuProxy", [] { return std::make_unique<LuProxy>(); });

  const auto t0 = std::chrono::steady_clock::now();
  SessionResult r;
  r.physics_digest = kFnvBasis;
  {
    cca::Framework fw(std::move(repo));
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.instantiate("lu", "LuFactor");
    fw.instantiate("lu_proxy", "LuProxy");
    fw.connect("mm", "measurement", "tau", "measurement");
    fw.connect("lu_proxy", "monitor", "mm", "monitor");
    fw.connect("lu_proxy", "lu_real", "lu", "lu");

    auto* mm = dynamic_cast<MastermindComponent*>(&fw.component("mm"));
    auto* tau = dynamic_cast<TauMeasurementComponent*>(&fw.component("tau"));
    CCAPERF_REQUIRE(mm != nullptr && tau != nullptr,
                    "lu session: component cast failed");
    if (sc.trace) {
      tau->registry().set_trace_capacity(sc.trace_events);
      tau->registry().set_tracing(true);
    }
    mm->set_telemetry_session(handle.name());
    auto* tport = fw.services("mm").provided_as<TelemetryPort>("telemetry");
    tport->start_telemetry(handle.sink(), sc.telemetry_interval);

    auto* lu = fw.services("lu_proxy").provided_as<components::LuPort>("lu");
    for (int rep = 0; rep < sc.lu_reps; ++rep) {
      const components::LuResult res =
          lu->factor(sc.lu_n, sc.lu_block, sc.seed + static_cast<std::uint64_t>(rep));
      // Partial pivoting keeps the random matrix backward-stable: a loose
      // absolute bound still catches wrong math (typical residuals ~1e-13).
      CCAPERF_REQUIRE(res.residual_max < 1e-6, "lu session: residual too large");
      fnv_u64(r.physics_digest, res.digest);
      fnv_u64(r.physics_digest, res.row_swaps);
    }
    tport->stop_telemetry();
    r.telemetry_lines = tport->telemetry_lines();
    if (sc.trace) handle.add_trace(collect_rank_trace(tau->registry(), 0));
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return r;
}

}  // namespace

std::string SessionScenario::describe() const {
  if (kind == "lu")
    return "lu n=" + std::to_string(lu_n) + " b=" + std::to_string(lu_block) +
           " reps=" + std::to_string(lu_reps);
  std::string d = "amr " + std::to_string(nx) + "x" + std::to_string(ny) + " p" +
                  std::to_string(ranks) + " t" + std::to_string(threads) + " s" +
                  std::to_string(steps);
  if (!fault_plan.empty()) d += " faults=" + fault_plan;
  return d;
}

SessionResult run_session(SessionHandle& handle, const SessionScenario& sc) {
  CCAPERF_REQUIRE(handle.valid(), "run_session: closed handle");
  if (sc.kind == "lu") return run_lu_session(handle, sc);
  CCAPERF_REQUIRE(sc.kind == "amr", "run_session: unknown scenario kind");
  return run_amr_session(handle, sc);
}

}  // namespace core
