#pragma once
// core::OverheadGovernor — overhead-governed adaptive monitoring
// (DESIGN.md §12; ROADMAP "adaptive, overhead-governed monitoring").
//
// The paper's central tension is that the measurement apparatus perturbs
// the component performance it models ("these instrumentation related
// overheads are small", §4 — a property asserted, not enforced). The
// governor enforces it: a per-rank feedback controller samples the
// monitoring stack's self-cost against wall time in sliding windows and
// steers the observability tiers — trace verbosity, counter sampling
// stride, telemetry emission interval, monitor record sampling — to keep
// realized overhead under a target budget (CCAPERF_OVERHEAD_PCT, default
// 2%) with hysteresis bands so the controller never oscillates.
//
// The controller is PURE and deterministic: observe() consumes one
// (wall_us, self_us, records) window and moves the throttle level by at
// most one step. All clock reads, actuation and plumbing live in the
// Mastermind (mastermind.cpp), which feeds windows in and applies the
// returned Settings — so the same window trace always yields the same
// tier-transition sequence (the determinism test pins this).
//
// On top of the throttle loop sits OnlineRefitter: at regrid boundaries
// it re-fits the active flux implementation's streaming model from the
// (sampled, realized-fraction-rescaled) monitoring records, re-evaluates
// the AssemblyOptimizer, and hot-swaps the flux component mid-run via
// Framework::reconnect when the model says the alternative wins.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/modeling.hpp"
#include "core/optimizer.hpp"
#include "tau/registry.hpp"

namespace cca {
class Framework;
}

namespace core {

class MastermindComponent;

/// Controller configuration. `enabled` is false unless CCAPERF_OVERHEAD_PCT
/// is set, which guarantees every output stays byte-identical to an
/// ungoverned run when the knob is absent.
struct GovernorConfig {
  bool enabled = false;
  double budget_pct = 2.0;   ///< target overhead, % of wall time
  double band_pct = 0.25;    ///< hysteresis half-band around the budget
  std::uint64_t window_records = 64;  ///< decision window, completed records
  double min_window_us = 500.0;       ///< ignore degenerate tiny windows
  int settle_windows = 1;  ///< windows to hold after an actuation
  int calm_windows = 2;    ///< consecutive calm windows before relaxing
  std::uint64_t seed = 0;  ///< phase of the deterministic 1-in-N samplers

  /// Reads CCAPERF_OVERHEAD_PCT (unset/empty -> disabled; <= 0 raises),
  /// plus the optional CCAPERF_GOVERNOR_WINDOW and CCAPERF_GOVERNOR_SEED.
  static GovernorConfig from_env();
};

/// One per-rank feedback controller. Levels form a ladder of actuation
/// steps ordered by information loss (cheapest loss first): telemetry
/// interval stretches, then trace verbosity drops, then counter sampling
/// coarsens, then monitor record sampling thins.
class OverheadGovernor {
 public:
  /// One decision window as measured by the plumbing layer.
  struct Window {
    double wall_us = 0.0;  ///< wall time since the previous window
    double self_us = 0.0;  ///< measurement self-cost spent in that span
    std::uint64_t records = 0;  ///< monitored invocations completed
  };

  /// The actuator state a throttle level maps to.
  struct Settings {
    std::uint32_t telem_interval_mult = 1;  ///< telemetry interval multiplier
    tau::TraceTier trace_tier = tau::TraceTier::full;
    std::uint32_t monitor_stride = 1;   ///< record 1-in-N monitored calls
    std::uint32_t cachesim_stride = 1;  ///< cache-sim batch sampling stride
  };

  /// Outcome of one observe() call.
  struct Decision {
    int level = 0;
    int prev_level = 0;
    double overhead_pct = 0.0;  ///< measured this window
    double headroom_pct = 0.0;  ///< budget - measured
    bool changed = false;       ///< level moved (settings must be re-applied)
    bool evaluated = false;     ///< window was large enough to judge
  };

  explicit OverheadGovernor(GovernorConfig cfg) : cfg_(cfg) {}

  const GovernorConfig& config() const { return cfg_; }

  /// Consumes one window; deterministic, no clock or environment reads.
  Decision observe(const Window& w);

  static constexpr int kMaxLevel = 7;
  /// Monotone ladder: every actuator is no more verbose at level n+1 than
  /// at level n (the property test pins this).
  static Settings settings_for(int level);

  int level() const { return level_; }
  Settings settings() const { return settings_for(level_); }

  // Decision history, exposed as GOVERNOR_* counter sources.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t throttles() const { return throttles_; }
  std::uint64_t unthrottles() const { return unthrottles_; }
  /// Every evaluated decision in order, for post-hoc audit (the
  /// convergence bench prints this as the controller trace). Windows are
  /// rare (one per cfg.window_records invocations), so unbounded growth is
  /// not a concern on realistic runs.
  const std::vector<Decision>& history() const { return history_; }
  /// Last measured overhead in basis points (1/100 %), for the counter
  /// track (counters are unsigned integers).
  std::uint64_t last_overhead_bp() const { return last_overhead_bp_; }
  double last_overhead_pct() const { return last_overhead_pct_; }

 private:
  GovernorConfig cfg_;
  int level_ = 0;
  int settle_left_ = 0;
  int calm_run_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t throttles_ = 0;
  std::uint64_t unthrottles_ = 0;
  std::uint64_t last_overhead_bp_ = 0;
  double last_overhead_pct_ = 0.0;
  std::vector<Decision> history_;
};

/// Online assembly re-optimization (paper §6 made adaptive): candidate
/// flux implementations behind one proxy, per-candidate streaming fits
/// built from the rows the (possibly sampled) monitor recorded, workload
/// counts rescaled by the realized recording fraction, and a
/// Framework::reconnect hot-swap when the AssemblyOptimizer prefers the
/// alternative. Unmeasured candidates are explored once (a deterministic
/// one-interval trial) before the optimizer is consulted.
class OnlineRefitter {
 public:
  struct Candidate {
    std::string instance;    ///< framework instance name (created lazily)
    std::string class_name;  ///< repository class to instantiate
    double accuracy = 1.0;   ///< QoS score for the optimizer
  };

  /// One refit event, also logged through the Mastermind's governor
  /// telemetry when attached.
  struct Event {
    std::uint64_t boundary = 0;  ///< regrid-boundary ordinal
    std::string kind;            ///< "explore" | "swap" | "hold"
    std::string from;
    std::string to;
    double predicted_us = 0.0;  ///< winner's predicted workload time
  };

  /// `proxy_instance`/`proxy_uses_port` name the uses port re-pointed on a
  /// swap ("flux_proxy"/"flux_real" in the instrumented assembly);
  /// `method_key` is the proxy's monitored method whose Record feeds the
  /// fits. `candidates[0]` must be the currently wired implementation.
  OnlineRefitter(cca::Framework& fw, MastermindComponent& mm,
                 std::string proxy_instance, std::string proxy_uses_port,
                 std::string method_key, std::vector<Candidate> candidates,
                 double accuracy_weight = 0.0, std::size_t min_samples = 8);

  /// Call at a regrid boundary: attributes the rows recorded since the
  /// previous boundary to the active candidate, then explores or
  /// re-optimizes. Safe to call with no new rows (holds).
  void on_boundary();

  const std::string& active() const { return candidates_[active_].instance; }
  std::uint64_t swaps() const { return swaps_; }
  const std::vector<Event>& events() const { return events_; }

 private:
  void swap_to(std::size_t idx, const char* kind, double predicted_us);
  void log_event(const Event& e);

  cca::Framework& fw_;
  MastermindComponent& mm_;
  std::string proxy_instance_;
  std::string proxy_uses_port_;
  std::string method_key_;
  std::vector<Candidate> candidates_;
  std::vector<StreamingFitSet> fits_;  ///< per-candidate (Q, wall) fits
  double accuracy_weight_;
  std::size_t min_samples_;
  std::size_t active_ = 0;
  std::size_t next_row_ = 0;  ///< first record row not yet attributed
  std::uint64_t boundaries_ = 0;
  std::uint64_t swaps_ = 0;
  std::vector<Event> events_;
};

}  // namespace core
