#pragma once
// Proxy components (paper §4.2).
//
// "For each component that the user wants to analyze, a proxy component is
// created. The proxy component shares the same interface as the actual
// component. ... the proxy is able to snoop the method invocation on the
// ProvidesPort, and then forward the method invocation to the component on
// the UsesPort. In addition, the proxy also uses a MonUF port to make
// measurements."
//
// Timer names follow the paper's Fig. 3 profile: sc_proxy (States),
// g_proxy (GodunovFlux), efm_proxy (EFMFlux), icc_proxy (AMRMesh).
// Each proxy extracts its component's performance parameters (array size
// Q, access mode, hierarchy level) before forwarding — §3.2 requirement 4.
//
// The proxies are mechanical: same ports, one monitored forward per
// method — "it is not difficult to envision proxy creation being fully
// automated." Each proxy resolves the monitor port and registers its
// method keys ONCE (lazily, on first invocation — wiring completes after
// setServices), then reports every call through the allocation-free
// MethodHandle/ParamSpan surface; the monitored component itself is still
// fetched per call so reconnection (candidate swapping, §6) keeps working.

#include <mutex>

#include "components/lu_workload.hpp"
#include "components/ports.hpp"
#include "core/ports.hpp"

namespace core {

/// RAII monitor bracket over the string-keyed MonitorPort surface. Kept
/// for hand-written/out-of-tree proxies; the generated proxies below use
/// the handle fast path.
class MonitoredScope {
 public:
  MonitoredScope(MonitorPort& monitor, const char* key, const ParamMap& params)
      : monitor_(monitor), key_(key) {
    monitor_.start(key_, params);
  }
  ~MonitoredScope() { monitor_.stop(key_); }
  MonitoredScope(const MonitoredScope&) = delete;
  MonitoredScope& operator=(const MonitoredScope&) = delete;

 private:
  MonitorPort& monitor_;
  const char* key_;
};

/// RAII monitor bracket over the handle fast path: parameter values live
/// in a caller-owned stack array; start/stop never allocate.
class MonitoredHandleScope {
 public:
  MonitoredHandleScope(MonitorPort& monitor, MethodHandle method, ParamSpan params)
      : monitor_(monitor), method_(method) {
    monitor_.start(method_, params);
  }
  ~MonitoredHandleScope() { monitor_.stop(method_); }
  MonitoredHandleScope(const MonitoredHandleScope&) = delete;
  MonitoredHandleScope& operator=(const MonitoredHandleScope&) = delete;

 private:
  MonitorPort& monitor_;
  MethodHandle method_;
};

/// Proxy for the States component ("sc_proxy"). Performance parameters:
/// Q = input array size (cells incl. ghosts), mode = 0 sequential / 1 strided.
class StatesProxy final : public cca::Component, public components::StatesPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<StatesPort*>(this)),
                          "states", "euler.StatesPort");
    svc.register_uses_port("states_real", "euler.StatesPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  euler::KernelCounts compute(const amr::PatchData<double>& u,
                              const amr::Box& interior, euler::Dir dir,
                              euler::Array2& left, euler::Array2& right) override {
    // call_once: the first compute() may land inside a parallel region,
    // where several lanes race to resolve the monitor.
    std::call_once(once_, [this] {
      monitor_ = svc_->get_port_as<MonitorPort>("monitor");
      method_ = monitor_->register_method("sc_proxy::compute()", {"Q", "mode"});
    });
    auto* real = svc_->get_port_as<StatesPort>("states_real");
    const double params[2] = {static_cast<double>(u.pts_per_comp()),
                              dir == euler::Dir::x ? 0.0 : 1.0};
    MonitoredHandleScope scope(*monitor_, method_, ParamSpan(params, 2));
    return real->compute(u, interior, dir, left, right);
  }

 private:
  cca::Services* svc_ = nullptr;
  std::once_flag once_;
  MonitorPort* monitor_ = nullptr;
  MethodHandle method_ = kInvalidMethodHandle;
};

/// Proxy for a FluxPort implementation. The timer key is chosen at
/// construction ("g_proxy::compute()" for GodunovFlux,
/// "efm_proxy::compute()" for EFMFlux). Q = faces * ncomp of the input
/// state arrays (the "array size" handed to the flux component).
class FluxProxy final : public cca::Component, public components::FluxPort {
 public:
  explicit FluxProxy(std::string timer_key) : key_(std::move(timer_key)) {}

  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<FluxPort*>(this)), "flux",
                          "euler.FluxPort");
    svc.register_uses_port("flux_real", "euler.FluxPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  euler::KernelCounts compute(const euler::Array2& left, const euler::Array2& right,
                              euler::Dir dir, euler::Array2& flux) override {
    std::call_once(once_, [this] {
      monitor_ = svc_->get_port_as<MonitorPort>("monitor");
      method_ = monitor_->register_method(key_, {"Q", "mode"});
    });
    auto* real = svc_->get_port_as<FluxPort>("flux_real");
    const double params[2] = {
        static_cast<double>(static_cast<std::size_t>(left.nx()) * left.ny()),
        dir == euler::Dir::x ? 0.0 : 1.0};
    MonitoredHandleScope scope(*monitor_, method_, ParamSpan(params, 2));
    return real->compute(left, right, dir, flux);
  }

  std::string method_name() const override {
    return svc_->get_port_as<FluxPort>("flux_real")->method_name();
  }
  double accuracy() const override {
    return svc_->get_port_as<FluxPort>("flux_real")->accuracy();
  }

 private:
  std::string key_;
  cca::Services* svc_ = nullptr;
  std::once_flag once_;
  MonitorPort* monitor_ = nullptr;
  MethodHandle method_ = kInvalidMethodHandle;
};

/// Proxy for AMRMesh ("icc_proxy"), capturing the message-passing costs:
/// each monitored invocation's MPI time is the Fig. 9 data. Parameters:
/// level, and the level's total cells.
class AMRMeshProxy final : public cca::Component, public components::MeshPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<MeshPort*>(this)), "mesh",
                          "amr.MeshPort");
    svc.register_uses_port("mesh_real", "amr.MeshPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  amr::Hierarchy& hierarchy() override { return real()->hierarchy(); }

  void initialize() override {
    MonitorPort& m = *monitor();  // resolves handles on first use
    MonitoredHandleScope scope(m, h_initialize_, {});
    real()->initialize();
  }

  amr::ExchangeStats ghost_update(int level) override {
    MonitorPort& m = *monitor();
    double params[2];
    level_params(level, params);
    MonitoredHandleScope scope(m, h_ghost_update_, ParamSpan(params, 2));
    return real()->ghost_update(level);
  }

  void prolong(int level) override {
    MonitorPort& m = *monitor();
    double params[2];
    level_params(level, params);
    MonitoredHandleScope scope(m, h_prolong_, ParamSpan(params, 2));
    real()->prolong(level);
  }

  void restrict_level(int fine_level) override {
    MonitorPort& m = *monitor();
    double params[2];
    level_params(fine_level, params);
    MonitoredHandleScope scope(m, h_restrict_, ParamSpan(params, 2));
    real()->restrict_level(fine_level);
  }

  void regrid() override {
    MonitorPort& m = *monitor();
    MonitoredHandleScope scope(m, h_regrid_, {});
    real()->regrid();
  }

 private:
  components::MeshPort* real() {
    return svc_->get_port_as<components::MeshPort>("mesh_real");
  }
  MonitorPort* monitor() {
    std::call_once(once_, [this] {
      monitor_ = svc_->get_port_as<MonitorPort>("monitor");
      h_initialize_ = monitor_->register_method("icc_proxy::initialize()", {});
      h_ghost_update_ =
          monitor_->register_method("icc_proxy::ghost_update()", {"level", "cells"});
      h_prolong_ =
          monitor_->register_method("icc_proxy::prolong()", {"level", "cells"});
      h_restrict_ =
          monitor_->register_method("icc_proxy::restrict()", {"level", "cells"});
      h_regrid_ = monitor_->register_method("icc_proxy::regrid()", {});
    });
    return monitor_;
  }
  void level_params(int level, double out[2]) {
    amr::Hierarchy& h = real()->hierarchy();
    out[0] = static_cast<double>(level);
    out[1] = static_cast<double>(h.level(level).total_cells());
  }

  cca::Services* svc_ = nullptr;
  std::once_flag once_;
  MonitorPort* monitor_ = nullptr;
  MethodHandle h_initialize_ = kInvalidMethodHandle;
  MethodHandle h_ghost_update_ = kInvalidMethodHandle;
  MethodHandle h_prolong_ = kInvalidMethodHandle;
  MethodHandle h_restrict_ = kInvalidMethodHandle;
  MethodHandle h_regrid_ = kInvalidMethodHandle;
};

/// Proxy for the dense-LU workload ("lu_proxy") — the HPL-style scenario
/// the TelemetryHub soaks alongside AMR sessions. Performance parameters:
/// N (matrix order) and the panel block width.
class LuProxy final : public cca::Component, public components::LuPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<LuPort*>(this)), "lu",
                          "hpl.LuPort");
    svc.register_uses_port("lu_real", "hpl.LuPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  components::LuResult factor(int n, int block, std::uint64_t seed) override {
    std::call_once(once_, [this] {
      monitor_ = svc_->get_port_as<MonitorPort>("monitor");
      method_ = monitor_->register_method("lu_proxy::factor()", {"N", "block"});
    });
    auto* real = svc_->get_port_as<components::LuPort>("lu_real");
    const double params[2] = {static_cast<double>(n), static_cast<double>(block)};
    MonitoredHandleScope scope(*monitor_, method_, ParamSpan(params, 2));
    return real->factor(n, block, seed);
  }

 private:
  cca::Services* svc_ = nullptr;
  std::once_flag once_;
  MonitorPort* monitor_ = nullptr;
  MethodHandle method_ = kInvalidMethodHandle;
};

}  // namespace core
