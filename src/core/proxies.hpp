#pragma once
// Proxy components (paper §4.2).
//
// "For each component that the user wants to analyze, a proxy component is
// created. The proxy component shares the same interface as the actual
// component. ... the proxy is able to snoop the method invocation on the
// ProvidesPort, and then forward the method invocation to the component on
// the UsesPort. In addition, the proxy also uses a MonUF port to make
// measurements."
//
// Timer names follow the paper's Fig. 3 profile: sc_proxy (States),
// g_proxy (GodunovFlux), efm_proxy (EFMFlux), icc_proxy (AMRMesh).
// Each proxy extracts its component's performance parameters (array size
// Q, access mode, hierarchy level) before forwarding — §3.2 requirement 4.
//
// The proxies are mechanical: same ports, one monitored forward per
// method. `MonitoredScope` is the shared body, demonstrating that "it is
// not difficult to envision proxy creation being fully automated."

#include "components/ports.hpp"
#include "core/ports.hpp"

namespace core {

/// RAII monitor bracket used by every generated proxy method.
class MonitoredScope {
 public:
  MonitoredScope(MonitorPort& monitor, const char* key, const ParamMap& params)
      : monitor_(monitor), key_(key) {
    monitor_.start(key_, params);
  }
  ~MonitoredScope() { monitor_.stop(key_); }
  MonitoredScope(const MonitoredScope&) = delete;
  MonitoredScope& operator=(const MonitoredScope&) = delete;

 private:
  MonitorPort& monitor_;
  const char* key_;
};

/// Proxy for the States component ("sc_proxy"). Performance parameters:
/// Q = input array size (cells incl. ghosts), mode = 0 sequential / 1 strided.
class StatesProxy final : public cca::Component, public components::StatesPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<StatesPort*>(this)),
                          "states", "euler.StatesPort");
    svc.register_uses_port("states_real", "euler.StatesPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  euler::KernelCounts compute(const amr::PatchData<double>& u,
                              const amr::Box& interior, euler::Dir dir,
                              euler::Array2& left, euler::Array2& right) override {
    auto* monitor = svc_->get_port_as<MonitorPort>("monitor");
    auto* real = svc_->get_port_as<StatesPort>("states_real");
    const ParamMap params{
        {"Q", static_cast<double>(u.pts_per_comp())},
        {"mode", dir == euler::Dir::x ? 0.0 : 1.0},
    };
    MonitoredScope scope(*monitor, "sc_proxy::compute()", params);
    return real->compute(u, interior, dir, left, right);
  }

 private:
  cca::Services* svc_ = nullptr;
};

/// Proxy for a FluxPort implementation. The timer key is chosen at
/// construction ("g_proxy::compute()" for GodunovFlux,
/// "efm_proxy::compute()" for EFMFlux). Q = faces * ncomp of the input
/// state arrays (the "array size" handed to the flux component).
class FluxProxy final : public cca::Component, public components::FluxPort {
 public:
  explicit FluxProxy(std::string timer_key) : key_(std::move(timer_key)) {}

  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<FluxPort*>(this)), "flux",
                          "euler.FluxPort");
    svc.register_uses_port("flux_real", "euler.FluxPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  euler::KernelCounts compute(const euler::Array2& left, const euler::Array2& right,
                              euler::Dir dir, euler::Array2& flux) override {
    auto* monitor = svc_->get_port_as<MonitorPort>("monitor");
    auto* real = svc_->get_port_as<FluxPort>("flux_real");
    const ParamMap params{
        {"Q", static_cast<double>(static_cast<std::size_t>(left.nx()) * left.ny())},
        {"mode", dir == euler::Dir::x ? 0.0 : 1.0},
    };
    MonitoredScope scope(*monitor, key_.c_str(), params);
    return real->compute(left, right, dir, flux);
  }

  std::string method_name() const override {
    return svc_->get_port_as<FluxPort>("flux_real")->method_name();
  }
  double accuracy() const override {
    return svc_->get_port_as<FluxPort>("flux_real")->accuracy();
  }

 private:
  std::string key_;
  cca::Services* svc_ = nullptr;
};

/// Proxy for AMRMesh ("icc_proxy"), capturing the message-passing costs:
/// each monitored invocation's MPI time is the Fig. 9 data. Parameters:
/// level, and the level's total cells.
class AMRMeshProxy final : public cca::Component, public components::MeshPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<MeshPort*>(this)), "mesh",
                          "amr.MeshPort");
    svc.register_uses_port("mesh_real", "amr.MeshPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }

  amr::Hierarchy& hierarchy() override { return real()->hierarchy(); }

  void initialize() override {
    MonitoredScope scope(*monitor(), "icc_proxy::initialize()", {});
    real()->initialize();
  }

  amr::ExchangeStats ghost_update(int level) override {
    MonitoredScope scope(*monitor(), "icc_proxy::ghost_update()",
                         level_params(level));
    return real()->ghost_update(level);
  }

  void prolong(int level) override {
    MonitoredScope scope(*monitor(), "icc_proxy::prolong()", level_params(level));
    real()->prolong(level);
  }

  void restrict_level(int fine_level) override {
    MonitoredScope scope(*monitor(), "icc_proxy::restrict()",
                         level_params(fine_level));
    real()->restrict_level(fine_level);
  }

  void regrid() override {
    MonitoredScope scope(*monitor(), "icc_proxy::regrid()", {});
    real()->regrid();
  }

 private:
  components::MeshPort* real() {
    return svc_->get_port_as<components::MeshPort>("mesh_real");
  }
  MonitorPort* monitor() { return svc_->get_port_as<MonitorPort>("monitor"); }
  ParamMap level_params(int level) {
    amr::Hierarchy& h = real()->hierarchy();
    return ParamMap{
        {"level", static_cast<double>(level)},
        {"cells", static_cast<double>(h.level(level).total_cells())},
    };
  }

  cca::Services* svc_ = nullptr;
};

}  // namespace core
