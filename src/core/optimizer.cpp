#include "core/optimizer.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace core {

void AssemblyOptimizer::add_slot(Slot slot) {
  CCAPERF_REQUIRE(!slot.candidates.empty(), "AssemblyOptimizer: slot without candidates");
  for (const Candidate& c : slot.candidates)
    CCAPERF_REQUIRE(c.time_model != nullptr,
                    "AssemblyOptimizer: candidate '" + c.class_name +
                        "' has no performance model");
  slots_.push_back(std::move(slot));
}

std::size_t AssemblyOptimizer::assembly_count() const {
  std::size_t n = 1;
  for (const Slot& s : slots_) n *= s.candidates.size();
  return n;
}

double AssemblyOptimizer::slot_time(const Slot& slot, const Candidate& c) const {
  double t = 0.0;
  for (const auto& [q, count] : slot.workload)
    t += count * std::max(0.0, c.time_model->predict(q));
  return t;
}

AssemblyChoice AssemblyOptimizer::make_choice(const std::vector<std::size_t>& pick,
                                              double accuracy_weight) const {
  AssemblyChoice choice;
  choice.predicted_time_us = fixed_time_us_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    const Candidate& c = slot.candidates[pick[s]];
    choice.selection[slot.functionality] = c.class_name;
    choice.predicted_time_us += slot_time(slot, c);
    choice.min_accuracy = std::min(choice.min_accuracy, c.accuracy);
  }
  choice.cost = choice.predicted_time_us *
                (1.0 + accuracy_weight * (1.0 - choice.min_accuracy));
  return choice;
}

std::vector<AssemblyChoice> AssemblyOptimizer::evaluate_all(
    double accuracy_weight) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  std::vector<AssemblyChoice> results;
  std::vector<std::size_t> pick(slots_.size(), 0);

  for (;;) {
    results.push_back(make_choice(pick, accuracy_weight));

    // Advance the mixed-radix counter, last slot fastest, so assemblies
    // enumerate in the same lexicographic order the selection tie-break
    // uses (and stable_sort preserves for equal costs).
    std::size_t s = slots_.size();
    while (s-- > 0) {
      if (++pick[s] < slots_[s].candidates.size()) break;
      pick[s] = 0;
    }
    if (s == static_cast<std::size_t>(-1)) break;
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const AssemblyChoice& a, const AssemblyChoice& b) {
                     return a.cost < b.cost;
                   });
  return results;
}

AssemblyChoice AssemblyOptimizer::best_exhaustive(double accuracy_weight) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  // Minimum cost; ties go to the lexicographically smallest pick vector
  // (slot insertion order major, candidate index order minor) — the same
  // visit order as the branch-and-bound DFS below.
  std::vector<std::size_t> pick(slots_.size(), 0);
  std::vector<std::size_t> best_pick;
  double best_cost = 0.0;
  for (;;) {
    const AssemblyChoice choice = make_choice(pick, accuracy_weight);
    if (best_pick.empty() || choice.cost < best_cost) {
      best_cost = choice.cost;
      best_pick = pick;
    } else if (choice.cost == best_cost && pick < best_pick) {
      best_pick = pick;
    }
    std::size_t s = slots_.size();
    while (s-- > 0) {
      if (++pick[s] < slots_[s].candidates.size()) break;
      pick[s] = 0;
    }
    if (s == static_cast<std::size_t>(-1)) break;
  }
  return make_choice(best_pick, accuracy_weight);
}

AssemblyChoice AssemblyOptimizer::best(double accuracy_weight,
                                       SearchStats* stats) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  const std::size_t n = slots_.size();

  // Candidate times are reused across the whole search — one model
  // evaluation per (slot, candidate), not per assembly.
  std::vector<std::vector<double>> times(n);
  std::vector<double> suffix_min(n + 1, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    times[s].reserve(slots_[s].candidates.size());
    for (const Candidate& c : slots_[s].candidates)
      times[s].push_back(slot_time(slots_[s], c));
  }
  for (std::size_t s = n; s-- > 0;)
    suffix_min[s] = suffix_min[s + 1] + *std::min_element(times[s].begin(), times[s].end());

  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};

  std::vector<std::size_t> pick(n, 0), best_pick;
  double best_cost = 0.0;
  bool have_best = false;

  // Iterative DFS in lexicographic pick order (slot 0 most significant):
  // the first complete assembly reaching a given cost is also the
  // tie-break winner, so a strict-improvement incumbent update suffices.
  struct Node {
    std::size_t slot;
    std::size_t cand;
    double time_so_far;
    double min_acc;
  };
  std::vector<Node> dfs;
  dfs.reserve(n * 4);
  for (std::size_t c = slots_[0].candidates.size(); c-- > 0;)
    dfs.push_back(Node{0, c, 0.0, 1.0});

  while (!dfs.empty()) {
    const Node node = dfs.back();
    dfs.pop_back();
    ++st.nodes_visited;

    const Slot& slot = slots_[node.slot];
    const double time = node.time_so_far + times[node.slot][node.cand];
    const double min_acc =
        std::min(node.min_acc, slot.candidates[node.cand].accuracy);
    pick[node.slot] = node.cand;

    // Lower bound on any completion: every remaining slot costs at least
    // its cheapest candidate, and the QoS factor only grows as further
    // (possibly less accurate) candidates bind.
    const double factor = 1.0 + accuracy_weight * (1.0 - min_acc);
    const double bound =
        (fixed_time_us_ + time + suffix_min[node.slot + 1]) * factor;
    if (have_best && bound >= best_cost) {
      ++st.subtrees_pruned;
      continue;
    }

    if (node.slot + 1 == n) {
      ++st.leaves_evaluated;
      const double cost = (fixed_time_us_ + time) * factor;
      if (!have_best || cost < best_cost) {
        have_best = true;
        best_cost = cost;
        best_pick = pick;
      }
      continue;
    }
    // Push children in reverse so candidate 0 is explored first.
    for (std::size_t c = slots_[node.slot + 1].candidates.size(); c-- > 0;)
      dfs.push_back(Node{node.slot + 1, c, time, min_acc});
  }

  return make_choice(best_pick, accuracy_weight);
}

}  // namespace core
