#include "core/optimizer.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace core {

void AssemblyOptimizer::add_slot(Slot slot) {
  CCAPERF_REQUIRE(!slot.candidates.empty(), "AssemblyOptimizer: slot without candidates");
  for (const Candidate& c : slot.candidates)
    CCAPERF_REQUIRE(c.time_model != nullptr,
                    "AssemblyOptimizer: candidate '" + c.class_name +
                        "' has no performance model");
  slots_.push_back(std::move(slot));
}

std::size_t AssemblyOptimizer::assembly_count() const {
  std::size_t n = 1;
  for (const Slot& s : slots_) n *= s.candidates.size();
  return n;
}

double AssemblyOptimizer::slot_time(const Slot& slot, const Candidate& c) const {
  double t = 0.0;
  for (const auto& [q, count] : slot.workload)
    t += count * std::max(0.0, c.time_model->predict(q));
  return t;
}

AssemblyChoice AssemblyOptimizer::make_choice(const std::vector<std::size_t>& pick,
                                              double accuracy_weight) const {
  AssemblyChoice choice;
  choice.predicted_time_us = fixed_time_us_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    const Candidate& c = slot.candidates[pick[s]];
    choice.selection[slot.functionality] = c.class_name;
    choice.predicted_time_us += slot_time(slot, c);
    choice.min_accuracy = std::min(choice.min_accuracy, c.accuracy);
  }
  choice.cost = choice.predicted_time_us *
                (1.0 + accuracy_weight * (1.0 - choice.min_accuracy));
  return choice;
}

std::vector<AssemblyChoice> AssemblyOptimizer::evaluate_all(
    double accuracy_weight) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  std::vector<AssemblyChoice> results;
  std::vector<std::size_t> pick(slots_.size(), 0);

  for (;;) {
    results.push_back(make_choice(pick, accuracy_weight));

    // Advance the mixed-radix counter, last slot fastest, so assemblies
    // enumerate in the same lexicographic order the selection tie-break
    // uses (and stable_sort preserves for equal costs).
    std::size_t s = slots_.size();
    while (s-- > 0) {
      if (++pick[s] < slots_[s].candidates.size()) break;
      pick[s] = 0;
    }
    if (s == static_cast<std::size_t>(-1)) break;
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const AssemblyChoice& a, const AssemblyChoice& b) {
                     return a.cost < b.cost;
                   });
  return results;
}

AssemblyChoice AssemblyOptimizer::best_exhaustive(double accuracy_weight) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  // Minimum cost; ties go to the lexicographically smallest pick vector
  // (slot insertion order major, candidate index order minor) — the same
  // visit order as the branch-and-bound DFS below.
  std::vector<std::size_t> pick(slots_.size(), 0);
  std::vector<std::size_t> best_pick;
  double best_cost = 0.0;
  for (;;) {
    const AssemblyChoice choice = make_choice(pick, accuracy_weight);
    if (best_pick.empty() || choice.cost < best_cost) {
      best_cost = choice.cost;
      best_pick = pick;
    } else if (choice.cost == best_cost && pick < best_pick) {
      best_pick = pick;
    }
    std::size_t s = slots_.size();
    while (s-- > 0) {
      if (++pick[s] < slots_[s].candidates.size()) break;
      pick[s] = 0;
    }
    if (s == static_cast<std::size_t>(-1)) break;
  }
  return make_choice(best_pick, accuracy_weight);
}

AssemblyChoice AssemblyOptimizer::best(double accuracy_weight,
                                       SearchStats* stats) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  const std::size_t n = slots_.size();

  // Candidate times are reused across the whole search — one model
  // evaluation per (slot, candidate), not per assembly.
  std::vector<std::vector<double>> times(n);
  std::vector<double> suffix_min(n + 1, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    times[s].reserve(slots_[s].candidates.size());
    for (const Candidate& c : slots_[s].candidates)
      times[s].push_back(slot_time(slots_[s], c));
  }
  for (std::size_t s = n; s-- > 0;)
    suffix_min[s] = suffix_min[s + 1] + *std::min_element(times[s].begin(), times[s].end());

  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};

  std::vector<std::size_t> pick(n, 0), best_pick;
  double best_cost = 0.0;
  bool have_best = false;

  // Iterative DFS in lexicographic pick order (slot 0 most significant):
  // the first complete assembly reaching a given cost is also the
  // tie-break winner, so a strict-improvement incumbent update suffices.
  struct Node {
    std::size_t slot;
    std::size_t cand;
    double time_so_far;
    double min_acc;
  };
  std::vector<Node> dfs;
  dfs.reserve(n * 4);
  for (std::size_t c = slots_[0].candidates.size(); c-- > 0;)
    dfs.push_back(Node{0, c, 0.0, 1.0});

  while (!dfs.empty()) {
    const Node node = dfs.back();
    dfs.pop_back();
    ++st.nodes_visited;

    const Slot& slot = slots_[node.slot];
    const double time = node.time_so_far + times[node.slot][node.cand];
    const double min_acc =
        std::min(node.min_acc, slot.candidates[node.cand].accuracy);
    pick[node.slot] = node.cand;

    // Lower bound on any completion: every remaining slot costs at least
    // its cheapest candidate, and the QoS factor only grows as further
    // (possibly less accurate) candidates bind.
    const double factor = 1.0 + accuracy_weight * (1.0 - min_acc);
    const double bound =
        (fixed_time_us_ + time + suffix_min[node.slot + 1]) * factor;
    if (have_best && bound >= best_cost) {
      ++st.subtrees_pruned;
      continue;
    }

    if (node.slot + 1 == n) {
      ++st.leaves_evaluated;
      const double cost = (fixed_time_us_ + time) * factor;
      if (!have_best || cost < best_cost) {
        have_best = true;
        best_cost = cost;
        best_pick = pick;
      }
      continue;
    }
    // Push children in reverse so candidate 0 is explored first.
    for (std::size_t c = slots_[node.slot + 1].candidates.size(); c-- > 0;)
      dfs.push_back(Node{node.slot + 1, c, time, min_acc});
  }

  return make_choice(best_pick, accuracy_weight);
}

// ---------------------------------------------------------------------------
// Joint assembly x ranks x threads search
// ---------------------------------------------------------------------------

namespace {

/// Per-configuration candidate values: values[slot][cand] is what the
/// tree charges slot leaf `slot` under that candidate's model at cfg.
std::vector<std::vector<double>> slot_candidate_values(
    const PatternModel& tree, const PatternConfig& cfg,
    const std::vector<Slot>& slots) {
  std::vector<std::vector<double>> values(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    values[s].reserve(slots[s].candidates.size());
    for (const Candidate& c : slots[s].candidates)
      values[s].push_back(tree.slot_value(s, cfg, *c.time_model));
  }
  return values;
}

}  // namespace

AssemblyOptimizer::JointChoice AssemblyOptimizer::best_joint_exhaustive(
    const PatternModel& tree, const PatternConfig& base,
    const std::vector<int>& ranks_grid, const std::vector<int>& threads_grid,
    double accuracy_weight) const {
  CCAPERF_REQUIRE(!ranks_grid.empty() && !threads_grid.empty(),
                  "best_joint: empty configuration grid");
  CCAPERF_REQUIRE(tree.slot_count() == slots_.size(),
                  "best_joint: tree slot leaves != optimizer slots");

  JointChoice best;
  bool have_best = false;
  std::vector<double> values(slots_.size(), 0.0);
  for (int ranks : ranks_grid) {
    for (int threads : threads_grid) {
      PatternConfig cfg = base;
      cfg.ranks = ranks;
      cfg.threads = threads;
      const auto cand_values = slot_candidate_values(tree, cfg, slots_);

      std::vector<std::size_t> pick(slots_.size(), 0);
      for (;;) {
        double min_acc = 1.0;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
          values[s] = cand_values[s][pick[s]];
          min_acc = std::min(min_acc, slots_[s].candidates[pick[s]].accuracy);
        }
        const double predicted = tree.predict_with_slot_values(cfg, values);
        const double cost =
            predicted * (1.0 + accuracy_weight * (1.0 - min_acc));
        // Grid-major, pick-lex enumeration: strict improvement keeps the
        // earliest minimum, which IS the tie-break winner.
        if (!have_best || cost < best.cost) {
          have_best = true;
          best.ranks = ranks;
          best.threads = threads;
          best.predicted_us = predicted;
          best.min_accuracy = min_acc;
          best.cost = cost;
          best.selection.clear();
          for (std::size_t s = 0; s < slots_.size(); ++s)
            best.selection[slots_[s].functionality] =
                slots_[s].candidates[pick[s]].class_name;
        }
        if (slots_.empty()) break;
        std::size_t s = slots_.size();
        while (s-- > 0) {
          if (++pick[s] < slots_[s].candidates.size()) break;
          pick[s] = 0;
        }
        if (s == static_cast<std::size_t>(-1)) break;
      }
    }
  }
  return best;
}

AssemblyOptimizer::JointChoice AssemblyOptimizer::best_joint(
    const PatternModel& tree, const PatternConfig& base,
    const std::vector<int>& ranks_grid, const std::vector<int>& threads_grid,
    double accuracy_weight, SearchStats* stats) const {
  CCAPERF_REQUIRE(!ranks_grid.empty() && !threads_grid.empty(),
                  "best_joint: empty configuration grid");
  CCAPERF_REQUIRE(tree.slot_count() == slots_.size(),
                  "best_joint: tree slot leaves != optimizer slots");
  const std::size_t n = slots_.size();

  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};

  JointChoice best;
  bool have_best = false;
  std::vector<std::size_t> pick(n, 0), best_pick(n, 0);
  std::vector<double> values(n, 0.0);

  for (int ranks : ranks_grid) {
    for (int threads : threads_grid) {
      PatternConfig cfg = base;
      cfg.ranks = ranks;
      cfg.threads = threads;
      const auto cand_values = slot_candidate_values(tree, cfg, slots_);
      // Cheapest completion per slot: predict() is monotone non-decreasing
      // in each slot value, so substituting the per-slot minimum bounds
      // every completion of a partial assignment from below.
      std::vector<double> min_value(n, 0.0);
      for (std::size_t s = 0; s < n; ++s)
        min_value[s] =
            *std::min_element(cand_values[s].begin(), cand_values[s].end());

      if (n == 0) {
        ++st.leaves_evaluated;
        const double predicted = tree.predict_with_slot_values(cfg, values);
        if (!have_best || predicted < best.cost) {
          have_best = true;
          best.ranks = ranks;
          best.threads = threads;
          best.predicted_us = predicted;
          best.min_accuracy = 1.0;
          best.cost = predicted;
        }
        continue;
      }

      struct Node {
        std::size_t slot;
        std::size_t cand;
        double min_acc;
      };
      std::vector<Node> dfs;
      dfs.reserve(n * 4);
      for (std::size_t c = slots_[0].candidates.size(); c-- > 0;)
        dfs.push_back(Node{0, c, 1.0});

      while (!dfs.empty()) {
        const Node node = dfs.back();
        dfs.pop_back();
        ++st.nodes_visited;

        const double min_acc = std::min(
            node.min_acc, slots_[node.slot].candidates[node.cand].accuracy);
        pick[node.slot] = node.cand;
        values[node.slot] = cand_values[node.slot][node.cand];
        for (std::size_t s = node.slot + 1; s < n; ++s) values[s] = min_value[s];

        // The QoS factor only grows as further slots bind, so bounding
        // with the factor-so-far stays admissible (as in best()).
        const double factor = 1.0 + accuracy_weight * (1.0 - min_acc);
        const double partial = tree.predict_with_slot_values(cfg, values);
        const double bound = partial * factor;
        if (have_best && bound >= best.cost) {
          ++st.subtrees_pruned;
          continue;
        }

        if (node.slot + 1 == n) {
          ++st.leaves_evaluated;
          // All slots assigned: partial is the exact prediction and the
          // bound the exact cost.
          if (!have_best || bound < best.cost) {
            have_best = true;
            best.ranks = ranks;
            best.threads = threads;
            best.predicted_us = partial;
            best.min_accuracy = min_acc;
            best.cost = bound;
            best_pick = pick;
          }
          continue;
        }
        for (std::size_t c = slots_[node.slot + 1].candidates.size(); c-- > 0;)
          dfs.push_back(Node{node.slot + 1, c, min_acc});
      }
    }
  }

  best.selection.clear();
  for (std::size_t s = 0; s < n; ++s)
    best.selection[slots_[s].functionality] =
        slots_[s].candidates[best_pick[s]].class_name;
  return best;
}

}  // namespace core
