#include "core/optimizer.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace core {

void AssemblyOptimizer::add_slot(Slot slot) {
  CCAPERF_REQUIRE(!slot.candidates.empty(), "AssemblyOptimizer: slot without candidates");
  for (const Candidate& c : slot.candidates)
    CCAPERF_REQUIRE(c.time_model != nullptr,
                    "AssemblyOptimizer: candidate '" + c.class_name +
                        "' has no performance model");
  slots_.push_back(std::move(slot));
}

std::size_t AssemblyOptimizer::assembly_count() const {
  std::size_t n = 1;
  for (const Slot& s : slots_) n *= s.candidates.size();
  return n;
}

double AssemblyOptimizer::slot_time(const Slot& slot, const Candidate& c) const {
  double t = 0.0;
  for (const auto& [q, count] : slot.workload)
    t += count * std::max(0.0, c.time_model->predict(q));
  return t;
}

std::vector<AssemblyChoice> AssemblyOptimizer::evaluate_all(
    double accuracy_weight) const {
  CCAPERF_REQUIRE(!slots_.empty(), "AssemblyOptimizer: no slots");
  std::vector<AssemblyChoice> results;
  std::vector<std::size_t> pick(slots_.size(), 0);

  for (;;) {
    AssemblyChoice choice;
    choice.predicted_time_us = fixed_time_us_;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      const Slot& slot = slots_[s];
      const Candidate& c = slot.candidates[pick[s]];
      choice.selection[slot.functionality] = c.class_name;
      choice.predicted_time_us += slot_time(slot, c);
      choice.min_accuracy = std::min(choice.min_accuracy, c.accuracy);
    }
    choice.cost = choice.predicted_time_us *
                  (1.0 + accuracy_weight * (1.0 - choice.min_accuracy));
    results.push_back(std::move(choice));

    // Advance the mixed-radix counter over candidate indices.
    std::size_t s = 0;
    while (s < slots_.size()) {
      if (++pick[s] < slots_[s].candidates.size()) break;
      pick[s] = 0;
      ++s;
    }
    if (s == slots_.size()) break;
  }

  std::sort(results.begin(), results.end(),
            [](const AssemblyChoice& a, const AssemblyChoice& b) {
              return a.cost < b.cost;
            });
  return results;
}

AssemblyChoice AssemblyOptimizer::best(double accuracy_weight) const {
  return evaluate_all(accuracy_weight).front();
}

}  // namespace core
