#pragma once
// core::TraceMerger — merges the per-rank tau::TraceBuffer flight
// recorders into a single Chrome-trace-event JSON file that
// ui.perfetto.dev (or chrome://tracing) renders directly:
//
//  * every rank becomes a process (pid = rank) with a named track;
//  * timer activations become duration slices ("B"/"E"), monitored method
//    invocations carrying a slice argument (e.g. Q) keep it as args;
//  * hardware-counter samples become counter tracks ("C");
//  * matched point-to-point message endpoints become flow arrows
//    ("s"/"f"), drawn from inside the sender's MPI_Send/MPI_Isend slice
//    to inside the receiver's completion slice. Matching is exact, by the
//    fabric's (src, dst, seq) identity — never inferred from timestamps.
//
// Ranks run as threads of one process, so all trace epochs come from the
// same steady clock; the merger aligns them by shifting each rank onto
// the earliest epoch.
//
// collect_rank_trace() must run on the rank thread while its Registry is
// still alive (inside Runtime::run); the merger itself is thread-safe and
// outlives the fabric, so export can happen after the ranks join.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "tau/registry.hpp"

namespace core {

/// One rank's trace, lifted out of its Registry (which dies with the
/// rank's framework) into plain data the merger can keep.
struct RankTrace {
  int rank = 0;
  int thread = 0;                        ///< 0 = rank thread, >0 = pool lane
  tau::Clock::time_point epoch{};        ///< steady-clock instant of t_us == 0
  std::vector<tau::TraceRecord> events;  ///< balanced (via snapshot_trace)
  std::vector<std::string> timer_names;  ///< index = TimerId
  std::vector<std::string> counter_names;
  std::vector<std::string> strings;      ///< trace-string table
  std::uint64_t total_events = 0;        ///< pushed ever (retained + dropped)
  std::uint64_t dropped_events = 0;      ///< lost to the ring bound
};

/// Snapshots `reg`'s trace and name tables for rank `rank`. For a
/// multi-threaded rank, pass each registry shard with its pool lane as
/// `thread`; the merged trace shows one named track per thread inside the
/// rank's process (thread 0 keeps the rank's own track, byte-identical to
/// the single-threaded export).
RankTrace collect_rank_trace(const tau::Registry& reg, int rank, int thread = 0);

/// What the merge produced / lost — callers gate acceptance on this
/// (e.g. "every retained send must have found its recv").
struct MergeStats {
  std::size_t ranks = 0;            ///< distinct ranks (threads don't add)
  std::size_t events = 0;           ///< JSON trace events written
  std::size_t slices = 0;           ///< complete begin/end slice pairs
  std::size_t flows = 0;            ///< matched send/recv pairs
  std::size_t unmatched_sends = 0;  ///< peer endpoint missing (ring drop)
  std::size_t unmatched_recvs = 0;
  std::size_t orphan_exits = 0;     ///< exits whose enters were overwritten
  std::uint64_t dropped = 0;        ///< ring drops summed over ranks

  bool fully_matched() const { return unmatched_sends == 0 && unmatched_recvs == 0; }
};

class TraceMerger {
 public:
  /// Registers one rank's trace. Thread-safe: rank threads call this
  /// concurrently right before the parallel region ends.
  void add_rank(RankTrace trace);

  std::size_t num_ranks() const;

  /// Writes the merged Chrome trace event JSON. Deterministic for a given
  /// set of ranks (ranks sorted, events kept in per-rank order).
  MergeStats write_chrome_trace(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<RankTrace> ranks_;
};

/// The CCAPERF_TRACE environment switch:
///   CCAPERF_TRACE       unset/""/"0"/"off" disable; "1"/"on" enable with
///                       the default path; anything else enables and names
///                       the output file.
///   CCAPERF_TRACE_EVENTS  ring capacity in events (0 = unbounded).
struct TraceEnv {
  bool enabled = false;
  std::string path = "trace.json";
  std::size_t capacity = tau::TraceBuffer::kDefaultCapacity;
};
TraceEnv trace_env();

}  // namespace core
