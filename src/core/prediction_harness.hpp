#pragma once
// Fig01 prediction harness (DESIGN.md §13): captures the case-study app's
// per-step workload from Mastermind records, builds its PatternModel tree,
// and calibrates the tree's free coefficients against measured end-to-end
// runs — the train side of the predict/validate loop that
// bench_ablation_prediction and the held-out tier-1 test close.
//
// Measurement protocol (both capture and wall timing): run the app at two
// step counts with regrids disabled and difference — the hierarchy is
// fixed after mesh->initialize(), so per-step workload is constant and
// (run(S2) - run(S1)) / (S2 - S1) isolates one step's cost with the
// init/teardown/thread-spawn cost subtracted exactly. Wall runs take the
// min over repetitions against scheduler noise.
//
// The substrate note that makes validation honest: the mpp fabric runs
// rank threads in one process, so on a single hardware core rank (and
// lane) work serializes and measured wall(P, T) / P is the per-rank
// per-step time — exactly the quantity the fig01 tree's RankReplicated
// root composes (compute + beta ceil(log2 P)).

#include <memory>
#include <string>
#include <vector>

#include "components/app_assembly.hpp"
#include "core/pattern_model.hpp"

namespace core {

/// One leaf's captured data: the global (all ranks summed) per-step
/// workload and the per-invocation time model fitted from the records.
struct LeafCapture {
  std::string method;                ///< record key, e.g. "sc_proxy::compute()"
  PatternModel::Workload per_step;   ///< global per-step (q, invocations)
  std::unique_ptr<PerfModel> model;  ///< per-invocation time vs q
  double variance_us2 = 0.0;         ///< mean squared fit residual
  /// Problem-size scaling exponents (LeafScaling::count_q_exp / q_q_exp).
  /// Defaults assume invocation counts scale linearly with the base grid
  /// (kernels) or per-invocation cells do (mesh ops); a second capture at
  /// another problem size replaces them with measured total-time exponents
  /// (fit_workload_q_scaling) — on an AMR hierarchy the refined-level work
  /// tracks the *feature*, not the grid, so the true exponents are well
  /// below 1 and fall further as the grid grows.
  double count_q_exp = 1.0;
  double q_q_exp = 0.0;
};

/// Everything collect_fig01_workload() captures about one app config.
struct Fig01Workload {
  double ref_q = 0.0;  ///< base-domain interior cells at capture
  int ref_ranks = 0;   ///< rank count the capture ran at
  LeafCapture states;  ///< sc_proxy::compute(), wall time vs Q
  LeafCapture flux;    ///< flux proxy key per cfg.flux_impl, wall vs Q
  /// ghost_update/prolong/restrict, *compute* time (wall - MPI) vs the
  /// level's global cells — wall would double-count blocked-wait time that
  /// the collective term already models.
  std::vector<LeafCapture> mesh_ops;
};

/// Runs the instrumented assembly at `steps_lo` and `steps_hi` (regrids
/// disabled, 1 thread lane) on `ranks` ranks and differences record row
/// counts into exact global per-step workloads; models are fitted from
/// the longer run's per-invocation samples.
Fig01Workload collect_fig01_workload(const components::AppConfig& cfg,
                                     int ranks, int steps_lo, int steps_hi);

/// Replaces `w`'s per-leaf problem-size exponents with two-point power-law
/// fits against a second capture of the same app at a different problem
/// size: exponent = log(total-time ratio) / log(q ratio), where total time
/// is the per-step sum of invocations x fitted per-invocation model. The
/// fit is on totals (not raw counts) because AMR patch granularity moves
/// count and per-invocation cost in opposite directions; only the product
/// is stable. q_q_exp is pinned to 0 so leaf models are never evaluated
/// outside their captured q range. Exponents clamp to [0, 1.5].
///
/// The power law only holds *locally*: the measured per-leaf exponent
/// falls as the grid grows (the refined levels track the shock feature,
/// one dimension, not the domain area), so predictions are reliable for
/// sizes bracketed by the probe and the base capture and overpredict on
/// upward extrapolation — bench_ablation_prediction quantifies both.
void fit_workload_q_scaling(Fig01Workload& w, const Fig01Workload& probe);

/// Marginal per-step wall time (us) of the plain (uninstrumented) app at
/// (ranks, threads): min-over-reps wall at each step count, differenced.
/// Sets CCAPERF_THREADS for the spawned rank threads and restores it.
double measure_fig01_step_us(const components::AppConfig& cfg, int ranks,
                             int threads, int steps_lo, int steps_hi, int reps);

/// One configuration for an interleaved measurement round-robin.
struct Fig01MeasureRequest {
  components::AppConfig cfg;
  int ranks = 1;
  int threads = 1;
};

/// Marginal per-step wall times for every request, measured in
/// *interleaved rounds*: each repetition visits every point once before
/// any point gets its next repetition. On a shared single-core box the
/// dominant noise is slow host-load drift over tens of seconds; measuring
/// points back-to-back lets one era inflate whole groups (e.g. the entire
/// training grid but none of the validation points), which a per-point
/// min cannot undo. Round-robin spreads every point across every era, so
/// the min-over-rounds at each step count sees at least one quiet pass.
std::vector<double> measure_fig01_points(
    const std::vector<Fig01MeasureRequest>& points, int steps_lo,
    int steps_hi, int reps);

/// The fig01 tree and the handles its calibration needs:
///   RankReplicated(beta,
///     Serial(MapParallel(alpha, Scale(kappa, Serial(states, flux, mesh...))),
///            Const(gamma)))
/// predict() returns per-rank per-step microseconds; multiply by steps x
/// ranks for a whole-run wall estimate on the serialized substrate.
struct Fig01Pattern {
  PatternModel tree;
  PatternModel::NodeId alpha_node = 0;  ///< MapParallel lane imbalance
  PatternModel::NodeId beta_node = 0;   ///< per-collective-hop cost (us)
  PatternModel::NodeId gamma_node = 0;  ///< fixed per-step fabric cost (us)
  PatternModel::NodeId kappa_node = 0;  ///< monitored -> total work scale
  std::size_t flux_slot = 0;            ///< joint-optimizer slot of the flux leaf
};

/// Assembles the tree from a capture (leaf models move into the tree).
/// The flux leaf is a slot leaf so the joint AssemblyOptimizer search can
/// substitute candidate flux implementations.
Fig01Pattern build_fig01_pattern(Fig01Workload workload);

/// One measured training/validation point.
struct Fig01Point {
  int ranks = 1;
  int threads = 1;
  double step_us = 0.0;      ///< marginal per-step wall of the whole run
  double per_rank_us = 0.0;  ///< step_us / ranks — what the tree predicts
};

/// Training-grid shape for calibrate_fig01().
struct Fig01TrainSpec {
  std::vector<int> ranks = {2, 4, 8};
  std::vector<int> threads = {1, 2};
  int capture_ranks = 2;
  int steps_lo = 2;
  int steps_hi = 6;
  int reps = 3;
  /// Extra instrumented captures at other problem sizes (the app config's
  /// domain scaled — size scaling is app-specific, so the caller builds
  /// them). When non-empty, the first is used to fit the leaves'
  /// problem-size exponents (fit_workload_q_scaling); predictions at
  /// unseen Q are pure extrapolation of the default linear-count
  /// assumption otherwise.
  std::vector<components::AppConfig> q_captures;
};

/// A calibrated fig01 pattern plus the evidence behind it.
struct Fig01Calibration {
  Fig01Pattern pattern;
  std::vector<Fig01Point> train;
  /// Stage 1 fits {kappa, gamma, beta} on the threads == 1 points (lane
  /// count drops out of MapParallel at L = 1); stage 2 fits {alpha} on the
  /// threads > 1 points with the rest frozen. The split keeps each stage
  /// jointly affine (kappa x alpha is a product term).
  PatternModel::CalibrationReport stage1;
  PatternModel::CalibrationReport stage2;
  /// Final overdetermined re-fit of {kappa, gamma, beta} on all points
  /// with alpha frozen (empty when the grid has no multi-lane points).
  PatternModel::CalibrationReport refit;
};

/// Capture + build + measure the training grid + two-stage calibration.
Fig01Calibration calibrate_fig01(const components::AppConfig& cfg,
                                 const Fig01TrainSpec& spec);

/// As calibrate_fig01, but with the training-grid walls already measured
/// — e.g. by a measure_fig01_points round-robin shared with the
/// validation points, so train and holdout sample the same host-load
/// eras. `train_step_us` must align with spec's grid in ranks-major,
/// threads-minor order.
Fig01Calibration calibrate_fig01_measured(
    const components::AppConfig& cfg, const Fig01TrainSpec& spec,
    const std::vector<double>& train_step_us);

/// Predicted per-rank per-step time at (ranks, threads) for the app
/// config's problem size (base-domain interior cells).
double predict_fig01_step_us(const Fig01Pattern& pattern,
                             const components::AppConfig& cfg, int ranks,
                             int threads);

/// The PatternConfig problem-size axis for an app config.
double fig01_problem_q(const components::AppConfig& cfg);

}  // namespace core
