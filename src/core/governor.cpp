#include "core/governor.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

#include "cca/framework.hpp"
#include "core/mastermind.hpp"

namespace core {

// ---------------------------------------------------------------------------
// GovernorConfig
// ---------------------------------------------------------------------------

GovernorConfig GovernorConfig::from_env() {
  GovernorConfig cfg;
  const char* pct = std::getenv("CCAPERF_OVERHEAD_PCT");
  if (pct == nullptr || *pct == '\0') return cfg;  // disabled: byte-identical
  char* end = nullptr;
  const double v = std::strtod(pct, &end);
  if (end == pct || !(v > 0.0)) {
    throw std::invalid_argument(
        "CCAPERF_OVERHEAD_PCT must be a positive percentage");
  }
  cfg.enabled = true;
  cfg.budget_pct = v;
  // Keep the hysteresis band proportional for large budgets but never wider
  // than the default so a 2% budget still means "converged by 2.5%".
  cfg.band_pct = std::min(0.25, v * 0.125) + (v >= 2.0 ? 0.25 : v * 0.125);
  if (const char* w = std::getenv("CCAPERF_GOVERNOR_WINDOW")) {
    const long n = std::strtol(w, nullptr, 10);
    if (n > 0) cfg.window_records = static_cast<std::uint64_t>(n);
  }
  if (const char* s = std::getenv("CCAPERF_GOVERNOR_SEED")) {
    cfg.seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// OverheadGovernor
// ---------------------------------------------------------------------------

OverheadGovernor::Settings OverheadGovernor::settings_for(int level) {
  // The ladder trades information for cost in order of regret: stretching
  // the telemetry interval loses nothing but resolution, dropping trace
  // verbosity loses post-hoc detail, coarsening the counter stride widens
  // sampled-counter error bars, and thinning monitor records slows (but,
  // thanks to realized-fraction rescaling, never biases) the streaming fits.
  static constexpr Settings kLadder[kMaxLevel + 1] = {
      /*0*/ {1, tau::TraceTier::full, 1, 1},
      /*1*/ {2, tau::TraceTier::full, 1, 4},
      /*2*/ {4, tau::TraceTier::slices, 1, 8},
      /*3*/ {4, tau::TraceTier::slices, 2, 16},
      /*4*/ {8, tau::TraceTier::counters, 4, 32},
      /*5*/ {8, tau::TraceTier::counters, 8, 64},
      /*6*/ {16, tau::TraceTier::off, 16, 64},
      /*7*/ {16, tau::TraceTier::off, 32, 128},
  };
  if (level < 0) level = 0;
  if (level > kMaxLevel) level = kMaxLevel;
  return kLadder[level];
}

OverheadGovernor::Decision OverheadGovernor::observe(const Window& w) {
  Decision d;
  d.prev_level = level_;
  d.level = level_;
  if (!(w.wall_us >= cfg_.min_window_us) || w.wall_us <= 0.0) {
    return d;  // degenerate window: hold everything, including settle state
  }
  const double overhead = 100.0 * std::max(0.0, w.self_us) / w.wall_us;
  d.evaluated = true;
  d.overhead_pct = overhead;
  d.headroom_pct = cfg_.budget_pct - overhead;
  last_overhead_pct_ = overhead;
  last_overhead_bp_ =
      static_cast<std::uint64_t>(std::llround(overhead * 100.0));
  ++decisions_;

  const double high = cfg_.budget_pct + cfg_.band_pct;
  const double low = cfg_.budget_pct - cfg_.band_pct;

  if (settle_left_ > 0) {
    // An actuation just happened; its effect is not yet fully reflected in
    // the window. Hold so one throttle cannot trigger the next.
    --settle_left_;
    calm_run_ = 0;
    d.level = level_;
    history_.push_back(d);
    return d;
  }

  if (overhead > high && level_ < kMaxLevel) {
    ++level_;
    ++throttles_;
    settle_left_ = cfg_.settle_windows;
    calm_run_ = 0;
    d.changed = true;
  } else if (overhead < low && level_ > 0) {
    // Relaxing needs sustained calm: `calm_windows` consecutive windows
    // below the lower band edge. A single quiet window (a barrier, an I/O
    // stall) must not reopen the expensive tiers.
    if (++calm_run_ >= cfg_.calm_windows) {
      --level_;
      ++unthrottles_;
      settle_left_ = cfg_.settle_windows;
      calm_run_ = 0;
      d.changed = true;
    }
  } else {
    calm_run_ = 0;  // inside the band (or pinned at an end): steady state
  }
  d.level = level_;
  history_.push_back(d);
  return d;
}

// ---------------------------------------------------------------------------
// OnlineRefitter
// ---------------------------------------------------------------------------

OnlineRefitter::OnlineRefitter(cca::Framework& fw, MastermindComponent& mm,
                               std::string proxy_instance,
                               std::string proxy_uses_port,
                               std::string method_key,
                               std::vector<Candidate> candidates,
                               double accuracy_weight, std::size_t min_samples)
    : fw_(fw),
      mm_(mm),
      proxy_instance_(std::move(proxy_instance)),
      proxy_uses_port_(std::move(proxy_uses_port)),
      method_key_(std::move(method_key)),
      candidates_(std::move(candidates)),
      accuracy_weight_(accuracy_weight),
      min_samples_(min_samples) {
  if (candidates_.empty()) {
    throw std::invalid_argument("OnlineRefitter needs at least one candidate");
  }
  fits_.reserve(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) fits_.emplace_back();
}

void OnlineRefitter::log_event(const Event& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"boundary\":%llu,\"action\":\"%s\",\"from\":\"%s\","
                "\"to\":\"%s\",\"predicted_us\":%.3f",
                static_cast<unsigned long long>(e.boundary), e.kind.c_str(),
                e.from.c_str(), e.to.c_str(), e.predicted_us);
  mm_.emit_governor_event("refit", buf);
  events_.push_back(e);
}

void OnlineRefitter::swap_to(std::size_t idx, const char* kind,
                             double predicted_us) {
  const Candidate& c = candidates_[idx];
  if (!fw_.has_instance(c.instance)) {
    fw_.instantiate(c.instance, c.class_name);
  }
  Event e;
  e.boundary = boundaries_;
  e.kind = kind;
  e.from = candidates_[active_].class_name;
  e.to = c.class_name;
  e.predicted_us = predicted_us;
  fw_.reconnect(proxy_instance_, proxy_uses_port_, c.instance, "flux");
  active_ = idx;
  ++swaps_;
  log_event(e);
}

void OnlineRefitter::on_boundary() {
  ++boundaries_;
  const Record* rec = mm_.record(method_key_);
  if (rec == nullptr) return;

  // Attribute every row recorded since the previous boundary to the
  // candidate that was wired up during that interval. The proxy's monitored
  // key never changes across a hot-swap, so row-index ranges are the
  // attribution mechanism.
  const std::size_t end = rec->count();
  for (std::size_t i = next_row_; i < end; ++i) {
    const double q = rec->param_at(i, "Q");
    if (std::isnan(q) || q <= 0.0) continue;
    fits_[active_].add(q, rec->wall_us(i));
  }
  next_row_ = end;

  // Exploration: any candidate with too few samples gets one measurement
  // interval before the optimizer is trusted. Deterministic order (lowest
  // index first) keeps the swap sequence reproducible.
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (fits_[i].count() < min_samples_) {
      if (i != active_) swap_to(i, "explore", 0.0);
      return;
    }
  }

  // Exploitation: per-candidate best streaming model, workload = the Q
  // histogram of everything recorded, rescaled by the realized recording
  // fraction so sampled monitoring stays unbiased.
  std::vector<std::unique_ptr<PerfModel>> models;
  Slot slot;
  slot.functionality = proxy_uses_port_;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    models.push_back(fits_[i].best());
    if (!models.back()) return;  // degenerate fit: hold
    ::core::Candidate cand;
    cand.class_name = candidates_[i].class_name;
    cand.time_model = models.back().get();
    cand.accuracy = candidates_[i].accuracy;
    slot.candidates.push_back(std::move(cand));
  }
  std::map<double, double> histogram;
  for (std::size_t i = 0; i < end; ++i) {
    const double q = rec->param_at(i, "Q");
    if (std::isnan(q) || q <= 0.0) continue;
    histogram[q] += 1.0;
  }
  const double frac = mm_.realized_fraction(method_key_);
  const double scale = frac > 0.0 ? 1.0 / frac : 1.0;
  for (const auto& [q, n] : histogram) slot.workload.emplace_back(q, n * scale);
  if (slot.workload.empty()) return;

  AssemblyOptimizer opt(0.0);
  opt.add_slot(std::move(slot));
  const AssemblyChoice choice = opt.best(accuracy_weight_);
  const auto it = choice.selection.find(proxy_uses_port_);
  if (it == choice.selection.end()) return;

  std::size_t winner = active_;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].class_name == it->second) {
      winner = i;
      break;
    }
  }
  if (winner != active_) {
    swap_to(winner, "swap", choice.predicted_time_us);
  } else {
    Event e;
    e.boundary = boundaries_;
    e.kind = "hold";
    e.from = candidates_[active_].class_name;
    e.to = candidates_[active_].class_name;
    e.predicted_us = choice.predicted_time_us;
    log_event(e);
  }
}

}  // namespace core
