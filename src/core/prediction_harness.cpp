#include "core/prediction_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "core/instrumented_app.hpp"
#include "mpp/runtime.hpp"
#include "support/error.hpp"

namespace core {

namespace {

/// Scoped CCAPERF_THREADS override: the rank pools read the variable on
/// thread creation, and every mpp::Runtime::run spawns fresh rank
/// threads, so setenv between runs retargets the lane count.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(int threads) {
    const char* prev = std::getenv("CCAPERF_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("CCAPERF_THREADS", std::to_string(threads).c_str(), 1);
  }
  ~ScopedThreadsEnv() {
    if (had_prev_)
      ::setenv("CCAPERF_THREADS", prev_.c_str(), 1);
    else
      ::unsetenv("CCAPERF_THREADS");
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// What to harvest from one monitored method's record.
struct MethodSpec {
  std::string key;
  std::string param;  ///< "Q" for kernels, "cells" for mesh ops
  Record::Metric metric = Record::Metric::wall;
};

/// Cross-rank aggregate of one method's record.
struct MethodAgg {
  std::map<double, double> counts;  ///< invocations per distinct param value
  std::vector<Sample> samples;      ///< (param, metric) per invocation
};

std::vector<MethodSpec> fig01_method_specs(const components::AppConfig& cfg) {
  const std::string flux_key =
      cfg.flux_impl == "EFMFlux" ? "efm_proxy::compute()" : "g_proxy::compute()";
  // Mesh ops use the compute metric (wall - MPI): their blocked-wait time
  // belongs to the tree's collective term, not the leaf.
  return {
      {"sc_proxy::compute()", "Q", Record::Metric::wall},
      {flux_key, "Q", Record::Metric::wall},
      {"icc_proxy::ghost_update()", "cells", Record::Metric::compute},
      {"icc_proxy::prolong()", "cells", Record::Metric::compute},
      {"icc_proxy::restrict()", "cells", Record::Metric::compute},
  };
}

/// Runs the instrumented app once and returns per-method cross-rank
/// aggregates (counts always; samples only when `want_samples`).
std::map<std::string, MethodAgg> run_capture(const components::AppConfig& cfg,
                                             int ranks, int steps,
                                             bool want_samples) {
  components::AppConfig run_cfg = cfg;
  run_cfg.driver.nsteps = steps;
  run_cfg.driver.regrid_interval = 0;  // fixed hierarchy => constant per-step work
  const auto specs = fig01_method_specs(cfg);

  std::map<std::string, MethodAgg> agg;
  std::mutex mu;
  mpp::Runtime::run(ranks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    InstrumentedApp app = assemble_instrumented_app(world, run_cfg);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    std::lock_guard<std::mutex> lock(mu);
    for (const MethodSpec& spec : specs) {
      const Record* rec = app.mastermind->record(spec.key);
      if (rec == nullptr) continue;  // e.g. no prolong on a 1-level run
      MethodAgg& a = agg[spec.key];
      for (std::size_t i = 0; i < rec->count(); ++i) {
        const double q = rec->param_at(i, spec.param);
        if (std::isnan(q)) continue;
        a.counts[q] += 1.0;
        if (want_samples) {
          const double t = spec.metric == Record::Metric::wall
                               ? rec->wall_us(i)
                               : spec.metric == Record::Metric::compute
                                     ? rec->compute_us(i)
                                     : rec->mpi_us(i);
          a.samples.push_back(Sample{q, t});
        }
      }
    }
  });
  return agg;
}

/// fit_best with guards for records that only ever see one or two
/// distinct parameter values (mesh ops visit one value per level).
std::unique_ptr<PerfModel> fit_leaf_model(const std::vector<Sample>& pts) {
  CCAPERF_REQUIRE(!pts.empty(), "fit_leaf_model: no samples");
  std::set<double> distinct;
  for (const Sample& s : pts) distinct.insert(s.q);
  if (distinct.size() == 1) {
    double mean = 0.0;
    for (const Sample& s : pts) mean += s.t;
    mean /= static_cast<double>(pts.size());
    auto model = std::make_unique<PolynomialModel>(std::vector<double>{mean});
    score_model(*model, pts, 1);
    return model;
  }
  if (distinct.size() == 2) {
    auto model = fit_polynomial(pts, 1);
    return model;
  }
  return fit_best(pts, 2);
}

double fit_variance(const PerfModel& model, const std::vector<Sample>& pts) {
  double ss = 0.0;
  for (const Sample& s : pts) {
    const double e = s.t - std::max(0.0, model.predict(s.q));
    ss += e * e;
  }
  return ss / static_cast<double>(pts.size());
}

LeafCapture make_leaf(const std::string& method, const MethodAgg& lo,
                      const MethodAgg& hi, int steps_lo, int steps_hi) {
  LeafCapture leaf;
  leaf.method = method;
  const double dsteps = static_cast<double>(steps_hi - steps_lo);
  for (const auto& [q, n_hi] : hi.counts) {
    const auto it = lo.counts.find(q);
    const double n_lo = it != lo.counts.end() ? it->second : 0.0;
    const double per_step = (n_hi - n_lo) / dsteps;
    // Init-phase-only entries difference to zero; drop them.
    if (per_step > 1e-12) leaf.per_step.push_back({q, per_step});
  }
  CCAPERF_REQUIRE(!leaf.per_step.empty(),
                  "collect_fig01_workload: no per-step work for " + method);
  leaf.model = fit_leaf_model(hi.samples);
  leaf.variance_us2 = fit_variance(*leaf.model, hi.samples);
  return leaf;
}

}  // namespace

double fig01_problem_q(const components::AppConfig& cfg) {
  return static_cast<double>(cfg.mesh.domain.num_pts());
}

Fig01Workload collect_fig01_workload(const components::AppConfig& cfg,
                                     int ranks, int steps_lo, int steps_hi) {
  CCAPERF_REQUIRE(steps_hi > steps_lo && steps_lo >= 1,
                  "collect_fig01_workload: need steps_hi > steps_lo >= 1");
  ScopedThreadsEnv one_lane(1);
  const auto lo = run_capture(cfg, ranks, steps_lo, false);
  auto hi = run_capture(cfg, ranks, steps_hi, true);

  const auto specs = fig01_method_specs(cfg);
  const MethodAgg empty;
  auto agg_of = [&](const std::map<std::string, MethodAgg>& m,
                    const std::string& key) -> const MethodAgg& {
    const auto it = m.find(key);
    return it != m.end() ? it->second : empty;
  };

  Fig01Workload w;
  w.ref_q = fig01_problem_q(cfg);
  w.ref_ranks = ranks;
  w.states = make_leaf(specs[0].key, agg_of(lo, specs[0].key),
                       agg_of(hi, specs[0].key), steps_lo, steps_hi);
  w.flux = make_leaf(specs[1].key, agg_of(lo, specs[1].key),
                     agg_of(hi, specs[1].key), steps_lo, steps_hi);
  for (std::size_t i = 2; i < specs.size(); ++i) {
    if (agg_of(hi, specs[i].key).counts.empty()) continue;
    LeafCapture op = make_leaf(specs[i].key, agg_of(lo, specs[i].key),
                               agg_of(hi, specs[i].key), steps_lo, steps_hi);
    // Mesh-op default: per-level invocation counts are fixed by the
    // hierarchy depth; the per-invocation cells parameter tracks the grid.
    op.count_q_exp = 0.0;
    op.q_q_exp = 1.0;
    w.mesh_ops.push_back(std::move(op));
  }
  CCAPERF_REQUIRE(!w.mesh_ops.empty(),
                  "collect_fig01_workload: no mesh-op records captured");
  return w;
}

namespace {

double workload_total_us(const LeafCapture& leaf) {
  double t = 0.0;
  for (const auto& bin : leaf.per_step)
    t += bin.second * std::max(0.0, leaf.model->predict(bin.first));
  return t;
}

double power_law_exponent(double v_ref, double v_probe, double q_ratio) {
  if (v_ref <= 0.0 || v_probe <= 0.0) return 0.0;
  const double e = std::log(v_ref / v_probe) / std::log(q_ratio);
  return std::min(1.5, std::max(0.0, e));
}

}  // namespace

void fit_workload_q_scaling(Fig01Workload& w, const Fig01Workload& probe) {
  CCAPERF_REQUIRE(w.ref_q > 0.0 && probe.ref_q > 0.0 && w.ref_q != probe.ref_q,
                  "fit_workload_q_scaling: need two distinct problem sizes");
  const double q_ratio = w.ref_q / probe.ref_q;
  // The exponent is fitted on the leaf's *total* modeled time, not its raw
  // invocation count: the AMR hierarchy shifts the per-invocation q
  // distribution as the grid scales (more, smaller refined patches), so
  // count and per-invocation cost move in opposite directions and only
  // their product is a stable power law. With q_q_exp = 0 the per-step
  // bins stay at captured q values, so leaf models are never evaluated
  // outside their fitted range; the scaling rides entirely on n_eff.
  auto fit = [&](LeafCapture& leaf, const LeafCapture& other) {
    leaf.count_q_exp = power_law_exponent(workload_total_us(leaf),
                                          workload_total_us(other), q_ratio);
    leaf.q_q_exp = 0.0;
  };
  fit(w.states, probe.states);
  fit(w.flux, probe.flux);
  for (LeafCapture& op : w.mesh_ops) {
    const LeafCapture* other = nullptr;
    for (const LeafCapture& p : probe.mesh_ops)
      if (p.method == op.method) other = &p;
    if (other == nullptr) continue;  // level absent at the probe size
    fit(op, *other);
  }
}

namespace {

double run_plain_wall_us(const components::AppConfig& cfg, int ranks,
                         int steps) {
  components::AppConfig run_cfg = cfg;
  run_cfg.driver.nsteps = steps;
  run_cfg.driver.regrid_interval = 0;
  const auto t0 = std::chrono::steady_clock::now();
  mpp::Runtime::run(ranks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    auto fw = components::assemble_app(world, run_cfg);
    fw->services("driver").provided_as<components::GoPort>("go")->go();
  });
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::vector<double> measure_fig01_points(
    const std::vector<Fig01MeasureRequest>& points, int steps_lo,
    int steps_hi, int reps) {
  CCAPERF_REQUIRE(steps_hi > steps_lo && steps_lo >= 1,
                  "measure_fig01_points: need steps_hi > steps_lo >= 1");
  CCAPERF_REQUIRE(reps >= 1, "measure_fig01_points: reps >= 1");
  const std::size_t n = points.size();
  std::vector<double> best_lo(n, 0.0), best_hi(n, 0.0);
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < n; ++i) {
      ScopedThreadsEnv lanes(points[i].threads);
      const double lo =
          run_plain_wall_us(points[i].cfg, points[i].ranks, steps_lo);
      const double hi =
          run_plain_wall_us(points[i].cfg, points[i].ranks, steps_hi);
      best_lo[i] = rep == 0 ? lo : std::min(best_lo[i], lo);
      best_hi[i] = rep == 0 ? hi : std::min(best_hi[i], hi);
    }
  }
  std::vector<double> step_us(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double marginal = (best_hi[i] - best_lo[i]) /
                            static_cast<double>(steps_hi - steps_lo);
    // Scheduler noise can push the difference negative on degenerate tiny
    // runs; clamp to a floor rather than returning nonsense.
    step_us[i] = std::max(marginal, 1e-3);
  }
  return step_us;
}

double measure_fig01_step_us(const components::AppConfig& cfg, int ranks,
                             int threads, int steps_lo, int steps_hi, int reps) {
  return measure_fig01_points({Fig01MeasureRequest{cfg, ranks, threads}},
                              steps_lo, steps_hi, reps)
      .front();
}

Fig01Pattern build_fig01_pattern(Fig01Workload workload) {
  Fig01Pattern p;
  PatternModel& t = p.tree;

  // Every leaf's captured workload is the global per-step work, divided
  // evenly over ranks (count_ranks_exp = 1); the problem-size exponents
  // come from the capture (measured when a second-size probe ran,
  // linear-count defaults otherwise).
  auto scaling_of = [&](const LeafCapture& leaf) {
    LeafScaling s;
    s.ref_q = workload.ref_q;
    s.ref_ranks = 1.0;  // counts captured globally -> / P
    s.count_ranks_exp = 1.0;
    s.count_q_exp = leaf.count_q_exp;
    s.q_q_exp = leaf.q_q_exp;
    return s;
  };

  std::vector<PatternModel::NodeId> leaves;
  const LeafScaling states_scaling = scaling_of(workload.states);
  const PerfModel* states_model = t.adopt(std::move(workload.states.model));
  leaves.push_back(t.leaf(states_model, workload.states.per_step,
                          states_scaling, workload.states.variance_us2));
  const LeafScaling flux_scaling = scaling_of(workload.flux);
  const PerfModel* flux_model = t.adopt(std::move(workload.flux.model));
  const PatternModel::NodeId flux_leaf =
      t.slot_leaf(flux_model, workload.flux.per_step, flux_scaling,
                  workload.flux.variance_us2);
  p.flux_slot = t.slot_count() - 1;
  leaves.push_back(flux_leaf);
  for (LeafCapture& op : workload.mesh_ops) {
    const LeafScaling op_scaling = scaling_of(op);
    const PerfModel* m = t.adopt(std::move(op.model));
    leaves.push_back(t.leaf(m, op.per_step, op_scaling, op.variance_us2));
  }

  const PatternModel::NodeId monitored = t.serial(std::move(leaves));
  p.kappa_node = t.scale(monitored, 1.0);  // unmonitored work rides along
  p.alpha_node = t.map_parallel(p.kappa_node, 1.0);  // serialized-lane default
  p.gamma_node = t.constant(0.0);          // fixed per-step fabric cost
  const PatternModel::NodeId per_rank =
      t.serial({p.alpha_node, p.gamma_node});
  p.beta_node = t.rank_replicated(per_rank, 0.0);
  t.set_root(p.beta_node);
  return p;
}

Fig01Calibration calibrate_fig01(const components::AppConfig& cfg,
                                 const Fig01TrainSpec& spec) {
  CCAPERF_REQUIRE(!spec.ranks.empty() && !spec.threads.empty(),
                  "calibrate_fig01: empty training grid");
  std::vector<Fig01MeasureRequest> grid;
  for (int ranks : spec.ranks)
    for (int threads : spec.threads)
      grid.push_back(Fig01MeasureRequest{cfg, ranks, threads});
  return calibrate_fig01_measured(
      cfg, spec,
      measure_fig01_points(grid, spec.steps_lo, spec.steps_hi, spec.reps));
}

Fig01Calibration calibrate_fig01_measured(
    const components::AppConfig& cfg, const Fig01TrainSpec& spec,
    const std::vector<double>& train_step_us) {
  CCAPERF_REQUIRE(!spec.ranks.empty() && !spec.threads.empty(),
                  "calibrate_fig01: empty training grid");
  CCAPERF_REQUIRE(
      train_step_us.size() == spec.ranks.size() * spec.threads.size(),
      "calibrate_fig01_measured: one wall time per training-grid point");
  Fig01Calibration cal;
  Fig01Workload workload = collect_fig01_workload(
      cfg, spec.capture_ranks, spec.steps_lo, spec.steps_hi);
  if (!spec.q_captures.empty()) {
    const Fig01Workload probe = collect_fig01_workload(
        spec.q_captures.front(), spec.capture_ranks, spec.steps_lo,
        spec.steps_hi);
    fit_workload_q_scaling(workload, probe);
  }
  cal.pattern = build_fig01_pattern(std::move(workload));

  std::size_t at = 0;
  for (int ranks : spec.ranks) {
    for (int threads : spec.threads) {
      Fig01Point pt;
      pt.ranks = ranks;
      pt.threads = threads;
      pt.step_us = train_step_us[at++];
      pt.per_rank_us = pt.step_us / static_cast<double>(ranks);
      cal.train.push_back(pt);
    }
  }

  // Observations are per-rank times, but the error we care about is
  // per-step (per-rank x P): weighting each point by its rank count makes
  // the least squares minimize step-space residuals, so the small-P
  // points (whose large per-rank values would otherwise dominate) don't
  // drown the scaling trend.
  const double q = fig01_problem_q(cfg);
  std::vector<PatternModel::Observation> stage1, stage2, all;
  for (const Fig01Point& pt : cal.train) {
    const PatternModel::Observation o{PatternConfig{q, pt.ranks, pt.threads},
                                      pt.per_rank_us,
                                      static_cast<double>(pt.ranks)};
    (pt.threads == 1 ? stage1 : stage2).push_back(o);
    all.push_back(o);
  }
  CCAPERF_REQUIRE(stage1.size() >= 3,
                  "calibrate_fig01: need >= 3 single-lane training points");

  // Stage 1 pins {kappa, gamma, beta} on the single-lane points (the
  // MapParallel factor is exactly 1 at L = 1 for any alpha); stage 2 fits
  // {alpha} on the multi-lane points with those frozen. A final re-fit of
  // {kappa, gamma, beta} over *all* points with alpha frozen turns the
  // exactly-determined stage-1 solve into an overdetermined one —
  // measurement noise on three points would otherwise land entirely on
  // beta, whose lever arm grows as P log P at held-out rank counts.
  PatternModel& t = cal.pattern.tree;
  const std::vector<PatternModel::NodeId> linear_nodes = {
      cal.pattern.kappa_node, cal.pattern.gamma_node, cal.pattern.beta_node};
  cal.stage1 = t.calibrate(stage1, linear_nodes);
  if (!stage2.empty()) {
    cal.stage2 = t.calibrate(stage2, {cal.pattern.alpha_node});
    cal.refit = t.calibrate(all, linear_nodes);
  }
  return cal;
}

double predict_fig01_step_us(const Fig01Pattern& pattern,
                             const components::AppConfig& cfg, int ranks,
                             int threads) {
  return pattern.tree.predict(
      PatternConfig{fig01_problem_q(cfg), ranks, threads});
}

}  // namespace core
