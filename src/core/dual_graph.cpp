#include "core/dual_graph.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace core {

DualGraph DualGraph::build(const cca::WiringDiagram& wiring,
                           const VertexWeigher& vertex_weight,
                           const EdgeWeigher& edge_weight) {
  DualGraph g;
  std::map<std::string, int> index;
  for (const auto& node : wiring.nodes) {
    const auto [compute, comm] = vertex_weight(node.instance);
    index[node.instance] = static_cast<int>(g.vertices_.size());
    g.vertices_.push_back(
        DualVertex{node.instance, node.class_name, compute, comm});
  }
  for (const cca::Connection& c : wiring.connections) {
    DualEdge e;
    e.caller = index.at(c.user_instance);
    e.callee = index.at(c.provider_instance);
    e.port = c.uses_port;
    e.invocations = edge_weight(c);
    g.edges_.push_back(e);
  }
  return g;
}

int DualGraph::vertex_index(const std::string& instance) const {
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    if (vertices_[i].instance == instance) return static_cast<int>(i);
  return -1;
}

double DualGraph::total_us() const {
  double total = 0.0;
  for (const DualVertex& v : vertices_) total += v.total_us();
  return total;
}

std::vector<std::string> DualGraph::negligible(double fraction) const {
  const double cutoff = total_us() * fraction;
  std::vector<std::string> out;
  for (const DualVertex& v : vertices_)
    if (v.total_us() < cutoff) out.push_back(v.instance);
  return out;
}

DualGraph DualGraph::pruned(double fraction) const {
  const auto drop = negligible(fraction);
  DualGraph g;
  std::map<int, int> remap;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (std::find(drop.begin(), drop.end(), vertices_[i].instance) != drop.end())
      continue;
    remap[static_cast<int>(i)] = static_cast<int>(g.vertices_.size());
    g.vertices_.push_back(vertices_[i]);
  }
  for (const DualEdge& e : edges_) {
    auto a = remap.find(e.caller);
    auto b = remap.find(e.callee);
    if (a == remap.end() || b == remap.end()) continue;
    DualEdge copy = e;
    copy.caller = a->second;
    copy.callee = b->second;
    g.edges_.push_back(copy);
  }
  return g;
}

void DualGraph::print(std::ostream& os) const {
  os << "Application dual (" << vertices_.size() << " vertices, " << edges_.size()
     << " edges, predicted total " << total_us() / 1000.0 << " ms)\n";
  for (const DualVertex& v : vertices_)
    os << "  [" << v.instance << " : " << v.class_name
       << "] compute=" << v.compute_us / 1000.0
       << " ms  comm=" << v.comm_us / 1000.0 << " ms\n";
  for (const DualEdge& e : edges_)
    os << "  " << vertices_[static_cast<std::size_t>(e.caller)].instance << " -"
       << e.port << "-> " << vertices_[static_cast<std::size_t>(e.callee)].instance
       << "  (N=" << e.invocations << ")\n";
}

std::string DualGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph dual {\n  rankdir=TB;\n";
  for (const DualVertex& v : vertices_)
    os << "  \"" << v.instance << "\" [shape=ellipse, label=\"" << v.instance
       << "\\ncompute " << v.compute_us / 1000.0 << " ms\\ncomm "
       << v.comm_us / 1000.0 << " ms\"];\n";
  for (const DualEdge& e : edges_)
    os << "  \"" << vertices_[static_cast<std::size_t>(e.caller)].instance
       << "\" -> \"" << vertices_[static_cast<std::size_t>(e.callee)].instance
       << "\" [label=\"N=" << e.invocations << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace core
