#pragma once
// The application dual (paper Fig. 10): "a composite performance model
// where the variables are the individual performance models of the
// components themselves ... constructed as a directed graph in the
// Mastermind, with edge weights corresponding to the number of invocations
// and the vertex weights being the compute and communication times
// determined from the performance models. The parent-child relationship is
// preserved to identify sub-graphs that do not contribute much to the
// execution time and thus can be neglected during component assembly
// optimization."

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "cca/framework.hpp"

namespace core {

struct DualVertex {
  std::string instance;    ///< component instance name
  std::string class_name;  ///< implementation class
  double compute_us = 0.0; ///< predicted (or measured) compute weight
  double comm_us = 0.0;    ///< predicted (or measured) communication weight
  double total_us() const { return compute_us + comm_us; }
};

struct DualEdge {
  int caller = -1;  ///< vertex index of the uses side
  int callee = -1;  ///< vertex index of the provides side
  std::string port;
  double invocations = 0.0;
};

/// Weights the Mastermind attaches to an instance when constructing the
/// dual: (compute_us, comm_us). Instances without records get zeros.
using VertexWeigher = std::function<std::pair<double, double>(const std::string&)>;
/// Invocation count for a (caller, port) connection.
using EdgeWeigher = std::function<double(const cca::Connection&)>;

class DualGraph {
 public:
  /// Builds the dual from the framework's wiring diagram (the "global
  /// understanding of how the components are networked") plus weights.
  static DualGraph build(const cca::WiringDiagram& wiring,
                         const VertexWeigher& vertex_weight,
                         const EdgeWeigher& edge_weight);

  const std::vector<DualVertex>& vertices() const { return vertices_; }
  const std::vector<DualEdge>& edges() const { return edges_; }

  int vertex_index(const std::string& instance) const;

  /// Total predicted application time (sum of vertex weights).
  double total_us() const;

  /// Vertices whose total weight is below `fraction` of the application
  /// total — the "sub-graphs that do not contribute much to the execution
  /// time and thus can be neglected during component assembly
  /// optimization".
  std::vector<std::string> negligible(double fraction) const;

  /// Dual with negligible vertices (and their edges) removed.
  DualGraph pruned(double fraction) const;

  void print(std::ostream& os) const;
  std::string to_dot() const;

 private:
  std::vector<DualVertex> vertices_;
  std::vector<DualEdge> edges_;
};

}  // namespace core
