#include "core/modeling.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace core {

std::vector<Bin> bin_by_q(const std::vector<Sample>& samples) {
  std::map<double, ccaperf::RunningStats> groups;
  for (const Sample& s : samples) groups[s.q].add(s.t);
  std::vector<Bin> bins;
  bins.reserve(groups.size());
  for (const auto& [q, stats] : groups)
    bins.push_back(Bin{q, stats.mean(), stats.stddev(), stats.count()});
  return bins;
}

// ---------------------------------------------------------------------------
// Models
// ---------------------------------------------------------------------------

double PolynomialModel::predict(double q) const {
  double v = 0.0;
  for (std::size_t k = coeffs_.size(); k-- > 0;) v = v * q + coeffs_[k];
  return v;
}

namespace {
std::string fmt_coeff(double c) {
  std::ostringstream os;
  os.precision(4);
  os << c;
  return os.str();
}
}  // namespace

std::string PolynomialModel::formula() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const double c = coeffs_[k];
    if (k == 0) {
      os << fmt_coeff(c);
    } else {
      os << (c < 0 ? " - " : " + ") << fmt_coeff(std::abs(c)) << " Q";
      if (k > 1) os << "^" << k;
    }
  }
  return os.str();
}

double PowerLawModel::predict(double q) const {
  return q > 0.0 ? std::exp(a_ * std::log(q) + b_) : 0.0;
}

std::string PowerLawModel::formula() const {
  std::ostringstream os;
  os.precision(4);
  os << "exp(" << a_ << " log(Q) " << (b_ < 0 ? "- " : "+ ") << std::abs(b_) << ")";
  return os.str();
}

double ExponentialModel::predict(double q) const { return std::exp(a_ + b_ * q); }

std::string ExponentialModel::formula() const {
  std::ostringstream os;
  os.precision(4);
  os << "exp(" << a_ << (b_ < 0 ? " - " : " + ") << std::abs(b_) << " Q)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Fitting
// ---------------------------------------------------------------------------

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b, std::size_t n) {
  CCAPERF_REQUIRE(a.size() == n * n && b.size() == n,
                  "solve_linear_system: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    CCAPERF_REQUIRE(std::abs(a[pivot * n + col]) > 1e-300,
                    "solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double v = b[r];
    for (std::size_t c = r + 1; c < n; ++c) v -= a[r * n + c] * x[c];
    x[r] = v / a[r * n + r];
  }
  return x;
}

std::unique_ptr<PolynomialModel> fit_polynomial(const std::vector<Sample>& pts,
                                                int degree) {
  CCAPERF_REQUIRE(degree >= 0, "fit_polynomial: degree >= 0");
  const auto n = static_cast<std::size_t>(degree) + 1;
  CCAPERF_REQUIRE(pts.size() >= n, "fit_polynomial: not enough points");

  // Normal equations: (X^T X) c = X^T y. Powers are scaled by mean |q| to
  // keep the system conditioned for Q ~ 1e5 and degree 4.
  double scale = 0.0;
  for (const Sample& s : pts) scale += std::abs(s.q);
  scale = std::max(scale / static_cast<double>(pts.size()), 1e-30);

  std::vector<double> xtx(n * n, 0.0), xty(n, 0.0);
  for (const Sample& s : pts) {
    std::vector<double> pow_q(n, 1.0);
    for (std::size_t k = 1; k < n; ++k) pow_q[k] = pow_q[k - 1] * (s.q / scale);
    for (std::size_t r = 0; r < n; ++r) {
      xty[r] += pow_q[r] * s.t;
      for (std::size_t c = 0; c < n; ++c) xtx[r * n + c] += pow_q[r] * pow_q[c];
    }
  }
  std::vector<double> scaled = solve_linear_system(std::move(xtx), std::move(xty), n);
  // Undo scaling: c_k = scaled_k / scale^k.
  std::vector<double> coeffs(n);
  double div = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    coeffs[k] = scaled[k] / div;
    div *= scale;
  }
  auto model = std::make_unique<PolynomialModel>(std::move(coeffs));
  score_model(*model, pts, static_cast<int>(n));
  return model;
}

std::unique_ptr<PowerLawModel> fit_power_law(const std::vector<Sample>& pts) {
  std::vector<Sample> logs;
  for (const Sample& s : pts)
    if (s.q > 0.0 && s.t > 0.0) logs.push_back(Sample{std::log(s.q), std::log(s.t)});
  CCAPERF_REQUIRE(logs.size() >= 2, "fit_power_law: need >= 2 positive points");
  auto line = fit_polynomial(logs, 1);
  const auto& c = line->coefficients();
  auto model = std::make_unique<PowerLawModel>(c[1], c[0]);
  score_model(*model, pts, 2);
  return model;
}

std::unique_ptr<ExponentialModel> fit_exponential(const std::vector<Sample>& pts) {
  std::vector<Sample> logs;
  for (const Sample& s : pts)
    if (s.t > 0.0) logs.push_back(Sample{s.q, std::log(s.t)});
  CCAPERF_REQUIRE(logs.size() >= 2, "fit_exponential: need >= 2 positive points");
  auto line = fit_polynomial(logs, 1);
  const auto& c = line->coefficients();
  auto model = std::make_unique<ExponentialModel>(c[0], c[1]);
  score_model(*model, pts, 2);
  return model;
}

void score_model(PerfModel& model, const std::vector<Sample>& pts, int nparams) {
  ccaperf::RunningStats tstats;
  for (const Sample& s : pts) tstats.add(s.t);
  double ss_res = 0.0;
  for (const Sample& s : pts) {
    const double e = s.t - model.predict(s.q);
    ss_res += e * e;
  }
  const double ss_tot =
      tstats.variance() * static_cast<double>(pts.size());
  model.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);
  const auto n = static_cast<double>(pts.size());
  const double p = static_cast<double>(nparams);
  model.adjusted_r2 =
      n - p - 1.0 > 0.0 ? 1.0 - (1.0 - model.r2) * (n - 1.0) / (n - p - 1.0)
                        : model.r2;
}

std::unique_ptr<PerfModel> fit_best(const std::vector<Sample>& pts,
                                    int max_poly_degree) {
  CCAPERF_REQUIRE(pts.size() >= 3, "fit_best: need >= 3 points");
  std::vector<std::unique_ptr<PerfModel>> candidates;
  for (int d = 1; d <= max_poly_degree; ++d) {
    if (pts.size() < static_cast<std::size_t>(d) + 2) break;
    candidates.push_back(fit_polynomial(pts, d));
  }
  bool all_positive = true;
  for (const Sample& s : pts) all_positive &= (s.q > 0.0 && s.t > 0.0);
  if (all_positive) {
    candidates.push_back(fit_power_law(pts));
    candidates.push_back(fit_exponential(pts));
  }
  CCAPERF_REQUIRE(!candidates.empty(), "fit_best: no candidate fits");
  auto best = std::max_element(candidates.begin(), candidates.end(),
                               [](const auto& a, const auto& b) {
                                 return a->adjusted_r2 < b->adjusted_r2;
                               });
  return std::move(*best);
}

// ---------------------------------------------------------------------------
// Streaming fits
// ---------------------------------------------------------------------------

StreamingPolyFit::StreamingPolyFit(int degree) : degree_(degree) {
  CCAPERF_REQUIRE(degree >= 0, "StreamingPolyFit: degree >= 0");
  sum_pow_.assign(2 * static_cast<std::size_t>(degree) + 1, 0.0);
  sum_pow_t_.assign(static_cast<std::size_t>(degree) + 1, 0.0);
}

void StreamingPolyFit::add(double q, double t) {
  ++n_;
  double p = 1.0;
  for (std::size_t k = 0; k < sum_pow_.size(); ++k) {
    sum_pow_[k] += p;
    if (k < sum_pow_t_.size()) sum_pow_t_[k] += p * t;
    p *= q;
  }
  sum_abs_q_ += std::abs(q);
  sum_t2_ += t * t;
}

std::unique_ptr<PolynomialModel> StreamingPolyFit::fit() const {
  return fit_with_residual(nullptr);
}

double StreamingPolyFit::residual_sum() const {
  double ss_res = 0.0;
  (void)fit_with_residual(&ss_res);
  return ss_res;
}

double StreamingPolyFit::mean_sq_residual() const {
  CCAPERF_REQUIRE(n_ > 0, "StreamingPolyFit: no points");
  return residual_sum() / static_cast<double>(n_);
}

std::unique_ptr<PolynomialModel> StreamingPolyFit::fit_with_residual(
    double* ss_res_out) const {
  const auto nc = static_cast<std::size_t>(degree_) + 1;
  CCAPERF_REQUIRE(n_ >= nc, "StreamingPolyFit: not enough points");

  // The batch path scales powers by mean |q| before solving; dividing the
  // raw power sums by scale^k reaches the same scaled normal equations.
  const double scale = std::max(sum_abs_q_ / static_cast<double>(n_), 1e-30);
  std::vector<double> inv_pow(sum_pow_.size(), 1.0);
  for (std::size_t k = 1; k < inv_pow.size(); ++k) inv_pow[k] = inv_pow[k - 1] / scale;

  std::vector<double> xtx(nc * nc), xty(nc);
  for (std::size_t r = 0; r < nc; ++r) {
    xty[r] = sum_pow_t_[r] * inv_pow[r];
    for (std::size_t c = 0; c < nc; ++c) xtx[r * nc + c] = sum_pow_[r + c] * inv_pow[r + c];
  }
  std::vector<double> scaled = solve_linear_system(std::move(xtx), std::move(xty), nc);
  std::vector<double> coeffs(nc);
  for (std::size_t k = 0; k < nc; ++k) coeffs[k] = scaled[k] * inv_pow[k];
  auto model = std::make_unique<PolynomialModel>(std::move(coeffs));

  // Score from the sufficient statistics: for a least-squares polynomial,
  // SS_res = sum t^2 - 2 c.(X^T y) + c.(X^T X).c with the raw moments.
  const auto& c = model->coefficients();
  double ct_xty = 0.0, ct_xtx_c = 0.0;
  for (std::size_t k = 0; k < nc; ++k) {
    ct_xty += c[k] * sum_pow_t_[k];
    for (std::size_t l = 0; l < nc; ++l) ct_xtx_c += c[k] * c[l] * sum_pow_[k + l];
  }
  const double ss_res = std::max(0.0, sum_t2_ - 2.0 * ct_xty + ct_xtx_c);
  if (ss_res_out != nullptr) *ss_res_out = ss_res;
  const double mean_t = sum_pow_t_[0] / static_cast<double>(n_);
  const double ss_tot = std::max(0.0, sum_t2_ - static_cast<double>(n_) * mean_t * mean_t);
  model->r2 = ss_tot > 0.0 ? std::clamp(1.0 - ss_res / ss_tot, 0.0, 1.0)
                           : (ss_res == 0.0 ? 1.0 : 0.0);
  const auto n = static_cast<double>(n_);
  const double p = static_cast<double>(nc);
  model->adjusted_r2 = n - p - 1.0 > 0.0
                           ? 1.0 - (1.0 - model->r2) * (n - 1.0) / (n - p - 1.0)
                           : model->r2;
  return model;
}

void StreamingPowerLawFit::add(double q, double t) {
  if (q > 0.0 && t > 0.0) line_.add(std::log(q), std::log(t));
}

std::unique_ptr<PowerLawModel> StreamingPowerLawFit::fit() const {
  CCAPERF_REQUIRE(line_.count() >= 2, "StreamingPowerLawFit: need >= 2 positive points");
  const auto line = line_.fit();
  const auto& c = line->coefficients();
  auto model = std::make_unique<PowerLawModel>(c[1], c[0]);
  model->r2 = line->r2;
  model->adjusted_r2 = line->adjusted_r2;
  return model;
}

void StreamingExpFit::add(double q, double t) {
  if (t > 0.0) line_.add(q, std::log(t));
}

std::unique_ptr<ExponentialModel> StreamingExpFit::fit() const {
  CCAPERF_REQUIRE(line_.count() >= 2, "StreamingExpFit: need >= 2 positive points");
  const auto line = line_.fit();
  const auto& c = line->coefficients();
  auto model = std::make_unique<ExponentialModel>(c[0], c[1]);
  model->r2 = line->r2;
  model->adjusted_r2 = line->adjusted_r2;
  return model;
}

StreamingFitSet::StreamingFitSet(int max_poly_degree) {
  CCAPERF_REQUIRE(max_poly_degree >= 1, "StreamingFitSet: max_poly_degree >= 1");
  for (int d = 1; d <= max_poly_degree; ++d) polys_.emplace_back(d);
}

void StreamingFitSet::add(double q, double t) {
  ++n_;
  all_positive_ &= (q > 0.0 && t > 0.0);
  for (StreamingPolyFit& p : polys_) p.add(q, t);
  if (all_positive_) {
    power_.add(q, t);
    exp_.add(q, t);
  }
}

std::unique_ptr<PerfModel> StreamingFitSet::best() const {
  CCAPERF_REQUIRE(n_ >= 3, "StreamingFitSet: need >= 3 points");
  std::vector<std::unique_ptr<PerfModel>> candidates;
  for (const StreamingPolyFit& p : polys_) {
    if (n_ < static_cast<std::size_t>(p.degree()) + 2) break;
    candidates.push_back(p.fit());
  }
  if (all_positive_) {
    candidates.push_back(power_.fit());
    candidates.push_back(exp_.fit());
  }
  CCAPERF_REQUIRE(!candidates.empty(), "StreamingFitSet: no candidate fits");
  auto it = std::max_element(candidates.begin(), candidates.end(),
                             [](const auto& a, const auto& b) {
                               return a->adjusted_r2 < b->adjusted_r2;
                             });
  return std::move(*it);
}

MeanSigmaModels build_mean_sigma_models(const std::vector<Sample>& samples,
                                        int max_poly_degree) {
  MeanSigmaModels out;
  out.bins = bin_by_q(samples);
  std::vector<Sample> means, sigmas;
  for (const Bin& b : out.bins) {
    means.push_back(Sample{b.q, b.mean});
    if (b.count >= 2) sigmas.push_back(Sample{b.q, b.stddev});
  }
  out.mean = fit_best(means, std::min(max_poly_degree, 2));
  if (sigmas.size() >= 3)
    out.sigma = fit_best(sigmas, max_poly_degree);
  return out;
}

}  // namespace core
