#include "core/trace_export.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <ostream>
#include <tuple>

#include "support/json.hpp"

namespace core {

using tau::TraceKind;
using tau::TraceRecord;

RankTrace collect_rank_trace(const tau::Registry& reg, int rank, int thread) {
  RankTrace t;
  t.rank = rank;
  t.thread = thread;
  t.epoch = reg.trace_epoch();
  t.events = reg.snapshot_trace();
  t.timer_names.reserve(reg.num_timers());
  for (tau::TimerId id = 0; id < reg.num_timers(); ++id)
    t.timer_names.push_back(reg.stats_at(id).name);
  t.counter_names = reg.counters().names();
  t.strings = reg.trace_strings();
  t.total_events = reg.trace().total();
  t.dropped_events = reg.trace().dropped();
  return t;
}

void TraceMerger::add_rank(RankTrace trace) {
  std::scoped_lock lock(mu_);
  ranks_.push_back(std::move(trace));
}

std::size_t TraceMerger::num_ranks() const {
  std::scoped_lock lock(mu_);
  return ranks_.size();
}

namespace {

/// Global message identity: (sender world rank, receiver world rank,
/// per-pair sequence number) — the fabric guarantees uniqueness.
using MsgKey = std::tuple<int, int, std::uint64_t>;

MsgKey msg_key(int rank, const TraceRecord& r) {
  return r.kind == TraceKind::msg_send
             ? MsgKey{rank, r.peer, r.seq}
             : MsgKey{r.peer, rank, r.seq};
}

/// Emits one JSON object into the traceEvents array.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  /// Opens the object and writes the common (ph, pid, tid, ts) prefix.
  EventWriter& begin(char ph, int pid, int tid, double ts) {
    os_ << (first_ ? "\n" : ",\n") << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << ccaperf::json_number(ts, 3);
    first_ = false;
    return *this;
  }
  EventWriter& name(std::string_view n) {
    os_ << ",\"name\":\"" << ccaperf::json_escape(n) << "\"";
    return *this;
  }
  EventWriter& raw(std::string_view fragment) {
    os_ << fragment;
    return *this;
  }
  void end() { os_ << "}"; }

  bool any() const { return !first_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string_view name_or(const std::vector<std::string>& table, std::size_t i) {
  return i < table.size() ? std::string_view(table[i]) : std::string_view("?");
}

}  // namespace

MergeStats TraceMerger::write_chrome_trace(std::ostream& os) const {
  std::vector<RankTrace> ranks;
  {
    std::scoped_lock lock(mu_);
    ranks = ranks_;
  }
  std::sort(ranks.begin(), ranks.end(), [](const RankTrace& a, const RankTrace& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.thread < b.thread;
  });

  MergeStats stats;
  // Thread shards share their rank's process: count distinct ranks only.
  for (std::size_t i = 0; i < ranks.size(); ++i)
    if (i == 0 || ranks[i].rank != ranks[i - 1].rank) ++stats.ranks;

  // Align every rank onto the earliest trace epoch (all epochs come from
  // the one steady clock — ranks are threads of this process).
  tau::Clock::time_point t0 = tau::Clock::time_point::max();
  for (const RankTrace& r : ranks) t0 = std::min(t0, r.epoch);

  // Deterministic flow matching by exact message identity: a flow exists
  // iff both its send and its recv endpoint survived in the rings.
  std::map<MsgKey, std::uint64_t> sends, recvs;  // key -> endpoint count
  for (const RankTrace& r : ranks) {
    stats.dropped += r.dropped_events;
    for (const TraceRecord& e : r.events) {
      if (e.kind == TraceKind::msg_send) ++sends[msg_key(r.rank, e)];
      if (e.kind == TraceKind::msg_recv) ++recvs[msg_key(r.rank, e)];
    }
  }
  std::map<MsgKey, std::uint64_t> flow_ids;  // matched pairs only
  std::uint64_t next_flow = 1;
  for (const auto& [key, n] : sends) {
    if (recvs.count(key)) {
      flow_ids[key] = next_flow++;
      ++stats.flows;
    } else {
      stats.unmatched_sends += n;
    }
  }
  for (const auto& [key, n] : recvs)
    if (!sends.count(key)) stats.unmatched_recvs += n;

  os << "{\"traceEvents\":[";
  EventWriter w(os);
  for (const RankTrace& r : ranks) {
    const double offset_us =
        std::chrono::duration<double, std::micro>(r.epoch - t0).count();
    // Thread 0 is the rank's own track (tid = rank, exactly the
    // single-threaded export); pool lanes get tid 1000+lane so they sort
    // below the rank thread inside the same process.
    const int tid = r.thread == 0 ? r.rank : 1000 + r.thread;
    const std::string rank_label = "rank " + std::to_string(r.rank);
    if (r.thread == 0) {
      w.begin('M', r.rank, tid, 0.0).name("process_name");
      w.raw(",\"args\":{\"name\":\"" + ccaperf::json_escape(rank_label) + "\"}");
      w.end();
      w.begin('M', r.rank, tid, 0.0).name("thread_name");
      w.raw(",\"args\":{\"name\":\"" + ccaperf::json_escape(rank_label) + "\"}");
      w.end();
    } else {
      const std::string lane_label = rank_label + " thread " + std::to_string(r.thread);
      w.begin('M', r.rank, tid, 0.0).name("thread_name");
      w.raw(",\"args\":{\"name\":\"" + ccaperf::json_escape(lane_label) + "\"}");
      w.end();
    }

    std::vector<std::uint32_t> open;  // enter/exit balance guard
    double last_ts = 0.0;
    for (const TraceRecord& e : r.events) {
      const double ts = e.t_us + offset_us;
      last_ts = std::max(last_ts, ts);
      switch (e.kind) {
        case TraceKind::enter:
          w.begin('B', r.rank, tid, ts).name(name_or(r.timer_names, e.id));
          if (e.has_arg())
            w.raw(",\"args\":{\"" +
                  ccaperf::json_escape(
                      name_or(r.strings, static_cast<std::uint32_t>(e.tag))) +
                  "\":" + ccaperf::json_number(e.value(), 6) + "}");
          w.end();
          ++stats.events;
          open.push_back(e.id);
          break;
        case TraceKind::exit:
          if (open.empty()) {
            // Its enter was overwritten by the ring — unrepresentable as a
            // slice, so drop it rather than corrupt the nesting.
            ++stats.orphan_exits;
            break;
          }
          w.begin('E', r.rank, tid, ts).end();
          ++stats.events;
          ++stats.slices;
          open.pop_back();
          break;
        case TraceKind::instant:
          w.begin('i', r.rank, tid, ts).name(name_or(r.strings, e.id));
          w.raw(",\"s\":\"t\"");
          w.end();
          ++stats.events;
          break;
        case TraceKind::counter:
          w.begin('C', r.rank, tid, ts).name(name_or(r.counter_names, e.id));
          w.raw(",\"args\":{\"value\":" + ccaperf::json_number(e.value(), 3) + "}");
          w.end();
          ++stats.events;
          break;
        case TraceKind::msg_send:
        case TraceKind::msg_recv: {
          const auto it = flow_ids.find(msg_key(r.rank, e));
          if (it == flow_ids.end()) break;  // counted as unmatched above
          const bool send = e.kind == TraceKind::msg_send;
          w.begin(send ? 's' : 'f', r.rank, tid, ts).name("msg");
          w.raw(",\"cat\":\"msg\",\"id\":" + std::to_string(it->second));
          if (send)
            w.raw(",\"args\":{\"bytes\":" + std::to_string(e.payload) +
                  ",\"tag\":" + std::to_string(e.tag) +
                  ",\"seq\":" + std::to_string(e.seq) +
                  ",\"dst\":" + std::to_string(e.peer) + "}");
          else
            w.raw(",\"bp\":\"e\"");
          w.end();
          ++stats.events;
          break;
        }
      }
    }
    // snapshot_trace() closes open activations, so leftovers here mean a
    // caller handed us a raw (unbalanced) event list: close them anyway.
    while (!open.empty()) {
      w.begin('E', r.rank, tid, last_ts).end();
      ++stats.events;
      ++stats.slices;
      open.pop_back();
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return stats;
}

TraceEnv trace_env() {
  TraceEnv env;
  const char* v = std::getenv("CCAPERF_TRACE");
  if (v == nullptr) return env;
  const std::string s(v);
  if (s.empty() || s == "0" || s == "off" || s == "false") return env;
  env.enabled = true;
  if (s != "1" && s != "on" && s != "true") env.path = s;
  if (const char* cap = std::getenv("CCAPERF_TRACE_EVENTS"))
    env.capacity = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  return env;
}

}  // namespace core
