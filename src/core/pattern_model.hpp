#pragma once
// core::PatternModel — compositional performance models over parallel
// patterns (DESIGN.md §13; ROADMAP "compositional performance models").
//
// The paper fits per-method models T(Q) and evaluates one assembly at the
// configurations it measured. This module composes those fitted models
// over the *structure* of the application — a recursive tree of pattern
// nodes — so the Mastermind can predict wall time at rank counts, thread
// lane counts and problem sizes it never ran:
//
//   Serial(c1..cn)        = sum_i T(ci)            sequenced stages
//   Pipeline(c1..cn)      = max_i T(ci)            throughput-bound stages
//   MapParallel(c; a)     = T(c) (1 + a (L-1)) / L the thread-lane pattern:
//                           span/lanes plus an imbalance term (a = 0 ideal
//                           speedup, a = 1 fully serialized lanes)
//   RankReplicated(c; b)  = T(c) + b ceil(log2 P)  per-rank cost plus the
//                           O(log P) tree-collective term (DESIGN.md §10)
//   Scale(c; k)           = k T(c)                 unmonitored work riding
//                           proportionally on monitored work
//   Const(g)              = g                      fixed per-step overhead
//   Leaf(model, workload) = sum_j n_j max(0, model(q_j))
//
// Leaves wrap fitted PerfModels (streaming or batch, PR 2) applied to a
// workload {(q_j, n_j)} captured from Mastermind records; LeafScaling
// extrapolates the workload to unmeasured problem sizes and rank counts.
// Slot leaves additionally register with the joint AssemblyOptimizer
// search (optimizer.hpp): their model is substituted per candidate.
//
// Free coefficients (a, b, k, g) are calibrated against measured end-to-end
// runs by linear least squares: predict() is affine in each coefficient,
// so probing the tree with unit coefficients recovers the design matrix
// (calibrate() verifies the affinity numerically and rejects free sets
// with product terms, e.g. a Scale nested under a free-imbalance
// MapParallel — calibrate such trees in stages).
//
// The tree is an arena (nodes are indices into one vector): no virtual
// dispatch, cheap to copy, and the joint optimizer's branch-and-bound can
// re-evaluate predict() thousands of times without allocation.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/modeling.hpp"

namespace core {

/// The configuration axes a prediction is made at.
struct PatternConfig {
  double q = 0.0;   ///< problem size (fig01: base-domain cell count)
  int ranks = 1;    ///< SCMD rank count P
  int threads = 1;  ///< worker lanes per rank L (CCAPERF_THREADS)
};

/// How a leaf's measured workload {(q_j, n_j)} extrapolates to an
/// unmeasured configuration. Effective workload at cfg:
///   n_eff = n_j * (cfg.q / ref_q)^count_q_exp * (ref_ranks / P)^count_ranks_exp
///   q_eff = q_j * (cfg.q / ref_q)^q_q_exp
/// Defaults leave the workload fixed. fig01 leaves use count_q_exp = 1
/// (a bigger domain means proportionally more patches of the same sizes
/// — the regridder's clustering caps patch size) and count_ranks_exp = 1
/// (the recorded workload is the global per-step work, divided evenly
/// across ranks by the load balancer).
struct LeafScaling {
  double ref_q = 1.0;
  double ref_ranks = 1.0;
  double count_q_exp = 0.0;
  double count_ranks_exp = 0.0;
  double q_q_exp = 0.0;
};

class PatternModel {
 public:
  using NodeId = std::size_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  enum class Kind { leaf, serial, pipeline, map_parallel, rank_replicated, scale, constant };

  /// (q_j, n_j): n_j invocations at parameter value q_j.
  using Workload = std::vector<std::pair<double, double>>;

  // --- tree construction -----------------------------------------------------
  // Builders return the new node's id; set_root() names the tree's top.
  // Children must already exist (ids only grow), so trees build bottom-up
  // and cycles are unrepresentable.

  /// Leaf over a fitted model. `variance_us2` is the per-invocation
  /// residual variance of the fit (see StreamingPolyFit::mean_sq_residual),
  /// composed bottom-up by predict_interval().
  NodeId leaf(const PerfModel* model, Workload workload,
              LeafScaling scaling = {}, double variance_us2 = 0.0);

  /// Leaf whose model is substituted per candidate by the joint optimizer
  /// search. `default_model` serves plain predict() calls. Slot ordinals
  /// follow creation order (slot_count()).
  NodeId slot_leaf(const PerfModel* default_model, Workload workload,
                   LeafScaling scaling = {}, double variance_us2 = 0.0);

  NodeId serial(std::vector<NodeId> children);
  NodeId pipeline(std::vector<NodeId> children);
  /// `alpha` in [0, 1]: imbalance (0 = perfect speedup, 1 = serialized).
  /// `lane_overhead_us` adds a per-extra-lane fixed cost.
  NodeId map_parallel(NodeId child, double alpha, double lane_overhead_us = 0.0);
  /// `beta_us`: cost per tree-collective hop, times ceil(log2 P).
  NodeId rank_replicated(NodeId child, double beta_us);
  NodeId scale(NodeId child, double kappa);
  NodeId constant(double value_us);

  void set_root(NodeId id);
  NodeId root() const { return root_; }
  std::size_t node_count() const { return nodes_.size(); }
  Kind kind(NodeId id) const { return nodes_.at(id).kind; }

  /// Takes ownership of a fitted model (lifetime convenience: leaves store
  /// raw pointers). Returns the borrowed pointer to pass to leaf().
  const PerfModel* adopt(std::unique_ptr<PerfModel> model);

  // --- coefficients ----------------------------------------------------------
  // Every non-leaf pattern carries one scalar coefficient: alpha for
  // MapParallel, beta for RankReplicated, kappa for Scale, the value for
  // Const (Serial/Pipeline have none). These are the calibration targets.

  double coefficient(NodeId id) const;
  void set_coefficient(NodeId id, double value);

  // --- prediction ------------------------------------------------------------

  /// Predicted time (us) at cfg, composed bottom-up from the root.
  double predict(const PatternConfig& cfg) const;

  /// Same, with slot leaf i forced to the precomputed value
  /// slot_values[i] (the joint optimizer's inner loop). predict() is
  /// monotone non-decreasing in every slot value — the property the
  /// branch-and-bound bound relies on.
  double predict_with_slot_values(const PatternConfig& cfg,
                                  const std::vector<double>& slot_values) const;

  /// A slot leaf's value under a specific candidate model (what
  /// predict() would charge that leaf if the candidate were wired in).
  double slot_value(std::size_t slot, const PatternConfig& cfg,
                    const PerfModel& model) const;

  std::size_t slot_count() const { return slots_.size(); }
  NodeId slot_node(std::size_t slot) const { return slots_.at(slot); }

  /// Mean prediction plus a one-sigma band from the leaves' fit-residual
  /// variances: Serial sums variances, Pipeline takes the argmax child's,
  /// MapParallel/Scale square their multipliers, Const/collective terms
  /// are exact. A leaf's workload multiplies its per-invocation variance
  /// by sum n_j^2 (independent-residual assumption).
  struct Interval {
    double mean_us = 0.0;
    double stddev_us = 0.0;
  };
  Interval predict_interval(const PatternConfig& cfg) const;

  // --- calibration -----------------------------------------------------------

  /// One observed end-to-end point. `weight` scales the point's residual
  /// in the least-squares objective (unweighted by default): the fig01
  /// harness observes *per-rank* time but cares about *per-step* error,
  /// so it weights each point by its rank count.
  struct Observation {
    PatternConfig cfg;
    double observed_us = 0.0;
    double weight = 1.0;
  };

  /// Result of a calibrate() call.
  struct CalibrationReport {
    std::vector<double> fitted;  ///< per free node, in argument order
    double rms_residual_us = 0.0;
    double max_rel_err = 0.0;  ///< on the training points themselves
  };

  /// Fits the coefficients of `free_nodes` to the observations by linear
  /// least squares and installs them (clamped to >= 0; MapParallel alpha
  /// additionally clamped to <= 1.5 so lane scaling stays near-physical).
  /// Requires predict() to be *jointly* affine in the free coefficients —
  /// verified numerically; nest-dependent free sets (a Scale under a free
  /// MapParallel) must calibrate in stages. Needs observations.size() >=
  /// free_nodes.size().
  CalibrationReport calibrate(const std::vector<Observation>& obs,
                              const std::vector<NodeId>& free_nodes);

  /// Human-readable one-line-per-node dump (tests and bench logs).
  std::string describe() const;

 private:
  struct Node {
    Kind kind = Kind::constant;
    std::vector<NodeId> children;
    const PerfModel* model = nullptr;  // leaves
    Workload workload;                 // leaves
    LeafScaling scaling;               // leaves
    double variance_us2 = 0.0;         // leaves: per-invocation residual var
    double coeff = 0.0;    // alpha | beta | kappa | const value
    double coeff2 = 0.0;   // map_parallel: lane_overhead_us
    std::size_t slot = static_cast<std::size_t>(-1);  // slot leaves
  };

  NodeId add(Node n);
  const Node& at(NodeId id) const;
  double leaf_value(const Node& n, const PatternConfig& cfg,
                    const PerfModel& model) const;
  double eval(NodeId id, const PatternConfig& cfg,
              const std::vector<double>* slot_values) const;
  double eval_var(NodeId id, const PatternConfig& cfg) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> slots_;
  // shared_ptr so tree copies (the joint search and tests take them)
  // share the immutable fitted models instead of forbidding copy.
  std::vector<std::shared_ptr<PerfModel>> owned_;
  NodeId root_ = kNoNode;
};

}  // namespace core
