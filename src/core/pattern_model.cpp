#include "core/pattern_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace core {

namespace {

/// ceil(log2 P) for P >= 1: the dissemination-barrier / Bruck round count
/// of the tree collectives (DESIGN.md §10).
double log2_rounds(int ranks) {
  CCAPERF_REQUIRE(ranks >= 1, "PatternModel: ranks >= 1");
  int rounds = 0;
  for (int span = 1; span < ranks; span *= 2) ++rounds;
  return static_cast<double>(rounds);
}

double pow_or_one(double base, double exp) {
  if (exp == 0.0) return 1.0;
  if (exp == 1.0) return base;
  return std::pow(base, exp);
}

}  // namespace

PatternModel::NodeId PatternModel::add(Node n) {
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

const PatternModel::Node& PatternModel::at(NodeId id) const {
  CCAPERF_REQUIRE(id < nodes_.size(), "PatternModel: bad node id");
  return nodes_[id];
}

PatternModel::NodeId PatternModel::leaf(const PerfModel* model, Workload workload,
                                        LeafScaling scaling, double variance_us2) {
  CCAPERF_REQUIRE(model != nullptr, "PatternModel::leaf: null model");
  Node n;
  n.kind = Kind::leaf;
  n.model = model;
  n.workload = std::move(workload);
  n.scaling = scaling;
  n.variance_us2 = variance_us2;
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::slot_leaf(const PerfModel* default_model,
                                             Workload workload, LeafScaling scaling,
                                             double variance_us2) {
  Node n;
  n.kind = Kind::leaf;
  n.model = default_model;  // may be null: plain predict() then rejects
  n.workload = std::move(workload);
  n.scaling = scaling;
  n.variance_us2 = variance_us2;
  n.slot = slots_.size();
  const NodeId id = add(std::move(n));
  slots_.push_back(id);
  return id;
}

PatternModel::NodeId PatternModel::serial(std::vector<NodeId> children) {
  CCAPERF_REQUIRE(!children.empty(), "PatternModel::serial: no children");
  for (NodeId c : children)
    CCAPERF_REQUIRE(c < nodes_.size(), "PatternModel::serial: bad child");
  Node n;
  n.kind = Kind::serial;
  n.children = std::move(children);
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::pipeline(std::vector<NodeId> children) {
  CCAPERF_REQUIRE(!children.empty(), "PatternModel::pipeline: no children");
  for (NodeId c : children)
    CCAPERF_REQUIRE(c < nodes_.size(), "PatternModel::pipeline: bad child");
  Node n;
  n.kind = Kind::pipeline;
  n.children = std::move(children);
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::map_parallel(NodeId child, double alpha,
                                                double lane_overhead_us) {
  CCAPERF_REQUIRE(child < nodes_.size(), "PatternModel::map_parallel: bad child");
  CCAPERF_REQUIRE(alpha >= 0.0, "PatternModel::map_parallel: alpha >= 0");
  CCAPERF_REQUIRE(lane_overhead_us >= 0.0,
                  "PatternModel::map_parallel: lane_overhead >= 0");
  Node n;
  n.kind = Kind::map_parallel;
  n.children = {child};
  n.coeff = alpha;
  n.coeff2 = lane_overhead_us;
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::rank_replicated(NodeId child, double beta_us) {
  CCAPERF_REQUIRE(child < nodes_.size(), "PatternModel::rank_replicated: bad child");
  CCAPERF_REQUIRE(beta_us >= 0.0, "PatternModel::rank_replicated: beta >= 0");
  Node n;
  n.kind = Kind::rank_replicated;
  n.children = {child};
  n.coeff = beta_us;
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::scale(NodeId child, double kappa) {
  CCAPERF_REQUIRE(child < nodes_.size(), "PatternModel::scale: bad child");
  CCAPERF_REQUIRE(kappa >= 0.0, "PatternModel::scale: kappa >= 0");
  Node n;
  n.kind = Kind::scale;
  n.children = {child};
  n.coeff = kappa;
  return add(std::move(n));
}

PatternModel::NodeId PatternModel::constant(double value_us) {
  CCAPERF_REQUIRE(value_us >= 0.0, "PatternModel::constant: value >= 0");
  Node n;
  n.kind = Kind::constant;
  n.coeff = value_us;
  return add(std::move(n));
}

void PatternModel::set_root(NodeId id) {
  CCAPERF_REQUIRE(id < nodes_.size(), "PatternModel::set_root: bad node");
  root_ = id;
}

const PerfModel* PatternModel::adopt(std::unique_ptr<PerfModel> model) {
  CCAPERF_REQUIRE(model != nullptr, "PatternModel::adopt: null model");
  owned_.push_back(std::move(model));
  return owned_.back().get();
}

double PatternModel::coefficient(NodeId id) const {
  const Node& n = at(id);
  CCAPERF_REQUIRE(n.kind == Kind::map_parallel || n.kind == Kind::rank_replicated ||
                      n.kind == Kind::scale || n.kind == Kind::constant,
                  "PatternModel::coefficient: node kind has no coefficient");
  return n.coeff;
}

void PatternModel::set_coefficient(NodeId id, double value) {
  CCAPERF_REQUIRE(value >= 0.0, "PatternModel::set_coefficient: value >= 0");
  const Node& check = at(id);
  CCAPERF_REQUIRE(check.kind == Kind::map_parallel ||
                      check.kind == Kind::rank_replicated ||
                      check.kind == Kind::scale || check.kind == Kind::constant,
                  "PatternModel::set_coefficient: node kind has no coefficient");
  nodes_[id].coeff = value;
}

double PatternModel::leaf_value(const Node& n, const PatternConfig& cfg,
                                const PerfModel& model) const {
  const LeafScaling& s = n.scaling;
  CCAPERF_REQUIRE(s.ref_q > 0.0 && s.ref_ranks > 0.0,
                  "PatternModel: leaf scaling refs must be positive");
  const double count_factor =
      pow_or_one(cfg.q / s.ref_q, s.count_q_exp) *
      pow_or_one(s.ref_ranks / static_cast<double>(cfg.ranks), s.count_ranks_exp);
  const double q_factor = pow_or_one(cfg.q / s.ref_q, s.q_q_exp);
  double total = 0.0;
  for (const auto& [q, count] : n.workload)
    total += count * count_factor * std::max(0.0, model.predict(q * q_factor));
  return total;
}

double PatternModel::eval(NodeId id, const PatternConfig& cfg,
                          const std::vector<double>* slot_values) const {
  const Node& n = at(id);
  switch (n.kind) {
    case Kind::leaf: {
      if (n.slot != static_cast<std::size_t>(-1) && slot_values != nullptr) {
        CCAPERF_REQUIRE(n.slot < slot_values->size(),
                        "PatternModel: slot values too short");
        return (*slot_values)[n.slot];
      }
      CCAPERF_REQUIRE(n.model != nullptr,
                      "PatternModel: slot leaf predicted without a model");
      return leaf_value(n, cfg, *n.model);
    }
    case Kind::serial: {
      double sum = 0.0;
      for (NodeId c : n.children) sum += eval(c, cfg, slot_values);
      return sum;
    }
    case Kind::pipeline: {
      double best = 0.0;
      for (NodeId c : n.children) best = std::max(best, eval(c, cfg, slot_values));
      return best;
    }
    case Kind::map_parallel: {
      CCAPERF_REQUIRE(cfg.threads >= 1, "PatternModel: threads >= 1");
      const double lanes = static_cast<double>(cfg.threads);
      const double span = eval(n.children[0], cfg, slot_values);
      return span * (1.0 + n.coeff * (lanes - 1.0)) / lanes +
             n.coeff2 * (lanes - 1.0);
    }
    case Kind::rank_replicated:
      return eval(n.children[0], cfg, slot_values) +
             n.coeff * log2_rounds(cfg.ranks);
    case Kind::scale:
      return n.coeff * eval(n.children[0], cfg, slot_values);
    case Kind::constant:
      return n.coeff;
  }
  CCAPERF_REQUIRE(false, "PatternModel: unreachable kind");
  return 0.0;
}

double PatternModel::predict(const PatternConfig& cfg) const {
  CCAPERF_REQUIRE(root_ != kNoNode, "PatternModel: no root set");
  return eval(root_, cfg, nullptr);
}

double PatternModel::predict_with_slot_values(
    const PatternConfig& cfg, const std::vector<double>& slot_values) const {
  CCAPERF_REQUIRE(root_ != kNoNode, "PatternModel: no root set");
  CCAPERF_REQUIRE(slot_values.size() == slots_.size(),
                  "PatternModel: slot value count mismatch");
  return eval(root_, cfg, &slot_values);
}

double PatternModel::slot_value(std::size_t slot, const PatternConfig& cfg,
                                const PerfModel& model) const {
  CCAPERF_REQUIRE(slot < slots_.size(), "PatternModel::slot_value: bad slot");
  return leaf_value(at(slots_[slot]), cfg, model);
}

double PatternModel::eval_var(NodeId id, const PatternConfig& cfg) const {
  const Node& n = at(id);
  switch (n.kind) {
    case Kind::leaf: {
      // The fit residual at q_j is mostly *systematic* model error: every
      // one of the n_j invocations is off by about the same amount, so the
      // bin's total error scales with n_j and its variance with n_j^2
      // (the conservative choice vs the independent-residual n_j rule).
      const LeafScaling& s = n.scaling;
      const double count_factor =
          pow_or_one(cfg.q / s.ref_q, s.count_q_exp) *
          pow_or_one(s.ref_ranks / static_cast<double>(cfg.ranks),
                     s.count_ranks_exp);
      double var = 0.0;
      for (const auto& bin : n.workload) {
        const double n_eff = bin.second * count_factor;
        var += n_eff * n_eff * n.variance_us2;
      }
      return var;
    }
    case Kind::serial: {
      double sum = 0.0;
      for (NodeId c : n.children) sum += eval_var(c, cfg);
      return sum;
    }
    case Kind::pipeline: {
      // Variance of the argmax child (the stage that determines the max).
      double best = -1.0, var = 0.0;
      for (NodeId c : n.children) {
        const double v = eval(c, cfg, nullptr);
        if (v > best) {
          best = v;
          var = eval_var(c, cfg);
        }
      }
      return var;
    }
    case Kind::map_parallel: {
      const double lanes = static_cast<double>(cfg.threads);
      const double f = (1.0 + n.coeff * (lanes - 1.0)) / lanes;
      return f * f * eval_var(n.children[0], cfg);
    }
    case Kind::rank_replicated:
      return eval_var(n.children[0], cfg);
    case Kind::scale:
      return n.coeff * n.coeff * eval_var(n.children[0], cfg);
    case Kind::constant:
      return 0.0;
  }
  CCAPERF_REQUIRE(false, "PatternModel: unreachable kind");
  return 0.0;
}

PatternModel::Interval PatternModel::predict_interval(const PatternConfig& cfg) const {
  CCAPERF_REQUIRE(root_ != kNoNode, "PatternModel: no root set");
  Interval out;
  out.mean_us = eval(root_, cfg, nullptr);
  out.stddev_us = std::sqrt(std::max(0.0, eval_var(root_, cfg)));
  return out;
}

PatternModel::CalibrationReport PatternModel::calibrate(
    const std::vector<Observation>& obs, const std::vector<NodeId>& free_nodes) {
  const std::size_t k = free_nodes.size();
  CCAPERF_REQUIRE(k >= 1, "PatternModel::calibrate: no free nodes");
  CCAPERF_REQUIRE(obs.size() >= k, "PatternModel::calibrate: need >= k observations");

  // Save the current coefficients; probing overwrites them.
  std::vector<double> saved(k);
  for (std::size_t j = 0; j < k; ++j) saved[j] = coefficient(free_nodes[j]);

  // predict(cfg) = base(cfg) + sum_j col_j(cfg) * theta_j when jointly
  // affine: base probes all-zero, col_j probes unit theta_j.
  const std::size_t m = obs.size();
  std::vector<double> base(m), cols(m * k);
  for (std::size_t j = 0; j < k; ++j) set_coefficient(free_nodes[j], 0.0);
  for (std::size_t i = 0; i < m; ++i) base[i] = predict(obs[i].cfg);
  for (std::size_t j = 0; j < k; ++j) {
    set_coefficient(free_nodes[j], 1.0);
    for (std::size_t i = 0; i < m; ++i)
      cols[i * k + j] = predict(obs[i].cfg) - base[i];
    set_coefficient(free_nodes[j], 0.0);
  }

  // Bounded least squares by active set: pattern semantics require every
  // coefficient >= 0 (and a MapParallel imbalance <= 1.5 — much above 1
  // stops being a lane model). Naively clamping a joint solution is
  // inconsistent — two coefficients that cancel at the training points
  // (a negative beta balancing a positive gamma, say) leave a wildly
  // biased survivor once one is clamped. Instead, whenever the
  // unconstrained solve violates a bound, pin the worst violator at its
  // bound and re-solve the reduced system, until the solution is
  // feasible (classic NNLS active-set; terminates in <= k rounds).
  const double kAlphaMax = 1.5;
  std::vector<double> theta(k, 0.0);
  std::vector<bool> pinned(k, false);
  try {
    for (std::size_t round = 0; round <= k; ++round) {
      std::vector<std::size_t> free_idx;
      for (std::size_t j = 0; j < k; ++j)
        if (!pinned[j]) free_idx.push_back(j);
      if (free_idx.empty()) break;
      const std::size_t f = free_idx.size();
      // Normal equations over the free coefficients (weighted least
      // squares: each point's squared residual scales by weight^2);
      // pinned coefficients contribute theta_j * col_j to the target.
      std::vector<double> xtx(f * f, 0.0), xty(f, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        const double w2 = obs[i].weight * obs[i].weight;
        double y = obs[i].observed_us - base[i];
        for (std::size_t j = 0; j < k; ++j)
          if (pinned[j]) y -= cols[i * k + j] * theta[j];
        for (std::size_t r = 0; r < f; ++r) {
          xty[r] += w2 * cols[i * k + free_idx[r]] * y;
          for (std::size_t c = 0; c < f; ++c)
            xtx[r * f + c] +=
                w2 * cols[i * k + free_idx[r]] * cols[i * k + free_idx[c]];
        }
      }
      const std::vector<double> sol =
          solve_linear_system(std::move(xtx), std::move(xty), f);
      // Find the worst bound violation among the free coefficients.
      std::size_t worst = k;
      double worst_by = 0.0, worst_at = 0.0;
      for (std::size_t r = 0; r < f; ++r) {
        const std::size_t j = free_idx[r];
        theta[j] = sol[r];
        const bool is_alpha = at(free_nodes[j]).kind == Kind::map_parallel;
        const double lo_by = -sol[r];
        const double hi_by = is_alpha ? sol[r] - kAlphaMax : -1.0;
        if (lo_by > worst_by) { worst = j; worst_by = lo_by; worst_at = 0.0; }
        if (hi_by > worst_by) { worst = j; worst_by = hi_by; worst_at = kAlphaMax; }
      }
      if (worst == k) break;  // feasible: done
      pinned[worst] = true;
      theta[worst] = worst_at;
    }
  } catch (...) {
    // A degenerate free set (e.g. a coefficient whose probe column is all
    // zeros because another free coefficient multiplies it — the nested
    // Scale-under-MapParallel case) makes the system singular; restore
    // the saved coefficients before letting the error out.
    for (std::size_t j = 0; j < k; ++j) set_coefficient(free_nodes[j], saved[j]);
    throw;
  }
  for (std::size_t j = 0; j < k; ++j) set_coefficient(free_nodes[j], theta[j]);

  // Affinity check: the installed coefficients must reproduce the linear
  // combination (a nonlinear free set — e.g. a Scale nested under a free
  // MapParallel — breaks superposition and must calibrate in stages).
  CalibrationReport report;
  report.fitted = theta;
  double ss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double linear = base[i];
    for (std::size_t j = 0; j < k; ++j) linear += cols[i * k + j] * theta[j];
    const double direct = predict(obs[i].cfg);
    const double scale_ref = std::max({std::abs(direct), std::abs(linear), 1e-9});
    if (std::abs(direct - linear) > 1e-6 * scale_ref) {
      for (std::size_t j = 0; j < k; ++j)
        set_coefficient(free_nodes[j], saved[j]);
      CCAPERF_REQUIRE(false,
                      "PatternModel::calibrate: predict is not jointly affine in "
                      "the free coefficients (calibrate in stages)");
    }
    const double err = obs[i].observed_us - direct;
    ss += err * err;
    if (obs[i].observed_us > 0.0)
      report.max_rel_err =
          std::max(report.max_rel_err, std::abs(err) / obs[i].observed_us);
  }
  report.rms_residual_us = std::sqrt(ss / static_cast<double>(m));
  return report;
}

std::string PatternModel::describe() const {
  std::ostringstream os;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    os << "#" << id << " ";
    switch (n.kind) {
      case Kind::leaf:
        os << (n.slot != static_cast<std::size_t>(-1) ? "slot-leaf" : "leaf")
           << " (" << n.workload.size() << " workload bins";
        if (n.model != nullptr) os << ", " << n.model->family();
        os << ")";
        break;
      case Kind::serial:
        os << "serial(" << n.children.size() << ")";
        break;
      case Kind::pipeline:
        os << "pipeline(" << n.children.size() << ")";
        break;
      case Kind::map_parallel:
        os << "map-parallel(alpha=" << n.coeff << ", lane_overhead="
           << n.coeff2 << ")";
        break;
      case Kind::rank_replicated:
        os << "rank-replicated(beta=" << n.coeff << ")";
        break;
      case Kind::scale:
        os << "scale(kappa=" << n.coeff << ")";
        break;
      case Kind::constant:
        os << "const(" << n.coeff << " us)";
        break;
    }
    if (id == root_) os << " <- root";
    os << "\n";
  }
  return os.str();
}

}  // namespace core
