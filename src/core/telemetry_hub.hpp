#pragma once
// core::TelemetryHub — a long-running in-process multi-tenant telemetry
// service (DESIGN.md §14).
//
// Everything before this subsystem was single-tenant: one app, one
// Mastermind, one telemetry sink, one process lifetime. The hub turns the
// same measurement stack into a *service*: many concurrent sessions (each
// an independent instrumented app run — fig01 AMR at some (ranks, threads,
// fault plan), or the HPL-style dense-LU workload) register with
// open_session() and publish their telemetry JSONL through isolated
// handles into one shared, bounded store.
//
// Architecture:
//
//   session rank threads ──publish──▶ shard rings ──drainer──▶ retained
//                                     (per-shard     (one        per-session
//                                      mutex, MPSC    ServiceThread) line deques,
//                                      ring, drop                  bounded total
//                                      accounting)                 memory)
//
//  * Sessions intern their names through a tau::NameInterner (the same
//    open-addressing pattern the Registry's timer table uses), so a
//    reopened session name maps to the same dense SessionId; an
//    incarnation counter distinguishes lives so stale ring items from a
//    previous life are discarded, never misattributed.
//  * publish() is the producers' fast path: lock one shard mutex, append
//    to that shard's ring (or bump the session's dropped_ring counter if
//    the ring is full), nudge the drainer past the high-water mark.
//    Sessions map to shards by id, so one session's lines live in one
//    ring and per-session FIFO order survives the trip.
//  * The drainer thread sweeps all shards each tick, moves items into
//    per-session retained deques, stamps a global sequence, and enforces
//    the two memory bounds: a per-session line cap (oldest lines of that
//    session fall off) and a hub-wide byte budget (globally-oldest
//    retained lines fall off first, whoever owns them). Every dropped
//    line is accounted to its session — nothing vanishes silently.
//  * Aggregate telemetry: the hub itself emits a JSONL line per
//    aggregate interval (sessions/sec, rows/sec, drops, retained/peak
//    bytes, per-scenario session counts and overhead_pct statistics
//    scraped from the sessions' own lines).
//  * Per-session Perfetto export: sessions hand their RankTraces to the
//    handle; export_session_trace() merges them with the existing
//    TraceMerger.
//
// Identity guarantee: the hub transports and stores lines verbatim — it
// never rewrites, reorders (within a session), or merges them, so a
// session's drained stream is byte-identical to the same app writing to a
// private ostream, which is what the soak harness and the HubProperty
// tests gate on.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace_export.hpp"
#include "support/service_thread.hpp"
#include "tau/interner.hpp"

namespace core {

class TelemetryHub;

/// Dense hub-wide session identity (interned from the session name).
using SessionId = std::uint32_t;
inline constexpr SessionId kInvalidSession = 0xffffffffu;

/// One retained telemetry line, in drain order.
struct SessionLine {
  std::uint64_t seq = 0;  ///< hub-global drain sequence (monotone)
  std::string text;       ///< verbatim JSONL line, no trailing newline
};

/// Per-session accounting, all monotone over a session's lifetime.
struct SessionStats {
  std::uint64_t published = 0;       ///< lines accepted into a shard ring
  std::uint64_t drained = 0;         ///< lines moved into the retained deque
  std::uint64_t dropped_ring = 0;    ///< rejected at publish (ring full)
  std::uint64_t dropped_evicted = 0; ///< drained, later evicted by a bound
  std::uint64_t retained = 0;        ///< currently queryable lines
  std::uint64_t retained_bytes = 0;
  bool open = false;
};

/// Hub-wide counters for the aggregate stream and the soak gates.
struct HubStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t published = 0;
  std::uint64_t drained = 0;
  std::uint64_t dropped_ring = 0;
  std::uint64_t dropped_evicted = 0;
  std::uint64_t bytes_retained = 0;
  std::uint64_t bytes_peak = 0;   ///< high-water mark of bytes_retained
  std::uint64_t drain_ticks = 0;
  std::uint64_t aggregate_lines = 0;
};

/// A session's handle on the hub: move-only RAII (close() on destruction).
/// The handle is the only way to publish — sessions never see the hub's
/// shards or each other.
class SessionHandle {
 public:
  SessionHandle() = default;
  SessionHandle(SessionHandle&& o) noexcept { *this = std::move(o); }
  SessionHandle& operator=(SessionHandle&& o) noexcept;
  SessionHandle(const SessionHandle&) = delete;
  SessionHandle& operator=(const SessionHandle&) = delete;
  ~SessionHandle() { close(); }

  bool valid() const { return hub_ != nullptr; }
  SessionId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& scenario() const { return scenario_; }

  /// The session's default telemetry sink — an ostream whose lines are
  /// published into the hub (split on '\n', each line one publish). Feed
  /// it to TelemetryPort::start_telemetry(). Lazily created; lives until
  /// close().
  std::ostream& sink();

  /// An additional publishing ostream for the same session — concurrent
  /// producers (per-rank Mastermind instances) each take their own so
  /// line buffering never interleaves partial lines. The handle keeps
  /// ownership; all sinks flush on close().
  std::ostream& make_sink();

  /// Publishes one complete line directly (no buffering).
  void publish(std::string_view line);

  /// Registers one rank's trace for later export_session_trace().
  void add_trace(RankTrace trace);

  /// Flushes sinks, publishes any unterminated tail, and closes the
  /// session in the hub (final drain included). Idempotent.
  void close();

 private:
  friend class TelemetryHub;
  SessionHandle(TelemetryHub* hub, SessionId id, std::uint32_t incarnation,
                std::string name, std::string scenario)
      : hub_(hub), id_(id), incarnation_(incarnation),
        name_(std::move(name)), scenario_(std::move(scenario)) {}

  TelemetryHub* hub_ = nullptr;
  SessionId id_ = kInvalidSession;
  std::uint32_t incarnation_ = 0;
  std::string name_;
  std::string scenario_;
  std::mutex sinks_mu_;  ///< guards sinks_ growth (make_sink from rank threads)
  std::vector<std::unique_ptr<std::ostream>> sinks_;
};

class TelemetryHub {
 public:
  struct Config {
    std::size_t shards = 8;              ///< rounded up to a power of two
    std::size_t shard_capacity = 1024;   ///< ring slots per shard
    std::size_t memory_budget_bytes = 8u << 20;  ///< retained-line bound
    std::size_t session_line_cap = 4096; ///< retained lines per session
    std::chrono::microseconds drain_interval{2000};
    std::chrono::microseconds aggregate_interval{0};  ///< 0 = every drain tick

    /// CCAPERF_HUB_SHARDS / _RING / _MEM_KB / _LINES / _DRAIN_US / _AGG_US.
    static Config from_env();
  };

  TelemetryHub();  ///< default Config
  explicit TelemetryHub(Config cfg);
  /// Stops the drainer (final drain included) and emits a last aggregate
  /// line if an aggregate sink is attached. Outstanding SessionHandles
  /// must not outlive the hub.
  ~TelemetryHub();
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Registers (or revives) a session. Names intern to stable SessionIds;
  /// reopening a name reuses its id with a fresh incarnation and resets
  /// the retained stream. `scenario` labels the aggregate breakdown
  /// (e.g. "amr", "lu"); `fault_plan` is recorded for the session query
  /// surface (the session itself applies it via mpp::RunOptions).
  SessionHandle open_session(std::string name, std::string scenario,
                             std::string fault_plan = "");

  /// Live aggregate JSONL sink (borrowed; null to detach). One line per
  /// aggregate interval while attached.
  void set_aggregate_sink(std::ostream* os);

  /// Runs a synchronous drain cycle on the caller (same exclusion as the
  /// drainer's tick). Tests and close paths use this to make "everything
  /// published is drained or accounted" hold at a point they choose.
  void drain_now();

  /// Blocks every drain cycle (the drainer's tick and drain_now() alike)
  /// while the returned lock is held — publishes keep landing in the
  /// shard rings but nothing moves to the retained store. Tests hold
  /// this to make ring-full rejection deterministic: without it a
  /// high-water nudge can wake the drainer mid-burst.
  std::unique_lock<std::mutex> pause_draining() {
    return std::unique_lock<std::mutex>(drain_mu_);
  }

  // --- session-scoped queries (any thread) ---------------------------------
  /// Retained lines of one session, in drain order.
  std::vector<SessionLine> session_lines(SessionId id) const;
  /// Retained lines joined with '\n' (one trailing newline) — the
  /// byte-identity comparand against a solo run's ostream contents.
  std::string session_text(SessionId id) const;
  SessionStats session_stats(SessionId id) const;
  /// Dense id for a name, or kInvalidSession.
  SessionId find_session(std::string_view name) const;
  std::string session_fault_plan(SessionId id) const;

  /// Merged Chrome-trace JSON of the session's registered RankTraces.
  MergeStats export_session_trace(SessionId id, std::ostream& os) const;

  HubStats stats() const;
  const Config& config() const { return cfg_; }

  /// Writes one aggregate JSONL line now (also called on the aggregate
  /// cadence by the drainer).
  void emit_aggregate(std::ostream& os);

 private:
  friend class SessionHandle;
  friend class HubSinkBuf;

  struct ShardItem {
    SessionId session = kInvalidSession;
    std::uint32_t incarnation = 0;
    std::string text;
  };
  /// (session, incarnation) — tallies are per life so a reopened name
  /// never inherits counts from items published by its previous life.
  using SessionKey = std::pair<SessionId, std::uint32_t>;
  struct ShardTally {
    std::uint64_t accepted = 0;  ///< entered the ring
    std::uint64_t dropped = 0;   ///< rejected, ring full
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<ShardItem> ring;  ///< fixed capacity, head/count window
    std::size_t head = 0;
    std::size_t count = 0;
    /// Publish-side per-session counters, folded into Session state at
    /// drain — producers only ever touch shard state, never state_mu_.
    std::map<SessionKey, ShardTally> tally;
  };

  struct Session {
    std::string name;
    std::string scenario;
    std::string fault_plan;
    std::uint32_t incarnation = 0;
    bool open = false;
    std::deque<SessionLine> lines;   ///< retained, drain order
    std::uint64_t bytes = 0;
    std::uint64_t published = 0;     ///< accepted into a ring (atomic mirror)
    std::uint64_t drained = 0;
    std::uint64_t dropped_ring = 0;
    std::uint64_t dropped_evicted = 0;
    std::vector<RankTrace> traces;
    // Scenario aggregate scrape state: overhead_pct sum/count this interval.
    double agg_overhead_sum = 0.0;
    std::uint64_t agg_overhead_n = 0;
  };

  void publish(SessionId id, std::uint32_t incarnation, std::string line);
  void close_session(SessionId id, std::uint32_t incarnation);
  void add_trace(SessionId id, std::uint32_t incarnation, RankTrace trace);
  void drain_cycle();
  /// Moves ring items into retained deques. Caller holds drain_mu_.
  void drain_shards_locked();
  /// Enforces the per-session cap and the global byte budget. Caller
  /// holds state_mu_.
  void enforce_bounds_unlocked();
  void evict_front_unlocked(Session& s);
  void emit_aggregate_unlocked(std::ostream& os);
  Shard& shard_for(SessionId id) { return *shards_[id & shard_mask_]; }

  Config cfg_;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Publish-side counters that must not take state_mu_ (producers only
  // ever touch their shard mutex + these).
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> dropped_ring_{0};

  mutable std::mutex state_mu_;  ///< sessions_, interner, retained bytes
  tau::NameInterner names_;      ///< session name -> dense SessionId
  std::deque<Session> sessions_; ///< index = SessionId (deque: stable refs)
  std::uint64_t bytes_retained_ = 0;
  std::uint64_t bytes_peak_ = 0;
  std::uint64_t dropped_evicted_total_ = 0;
  std::uint64_t drained_total_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_closed_ = 0;
  std::uint64_t drain_ticks_ = 0;
  std::ostream* aggregate_sink_ = nullptr;
  std::uint64_t aggregate_lines_ = 0;
  // Aggregate interval deltas (rates are per aggregate interval).
  std::chrono::steady_clock::time_point agg_epoch_;
  std::chrono::steady_clock::time_point agg_last_;
  std::uint64_t agg_last_drained_ = 0;
  std::uint64_t agg_last_opened_ = 0;

  std::mutex drain_mu_;  ///< serializes drain cycles (drainer vs drain_now)
  std::chrono::steady_clock::time_point agg_due_;
  std::unique_ptr<ccaperf::ServiceThread> drainer_;  ///< last member: stops first
};

/// An ostream that buffers until '\n' and publishes each complete line
/// into the hub under the owning session's identity. One per producer
/// thread (SessionHandle::sink()/make_sink() hand these out).
class HubSinkBuf : public std::streambuf {
 public:
  HubSinkBuf(TelemetryHub* hub, SessionId id, std::uint32_t incarnation)
      : hub_(hub), id_(id), incarnation_(incarnation) {}
  ~HubSinkBuf() override { flush_tail(); }

  /// Publishes a non-empty unterminated tail as its own line.
  void flush_tail();

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;

 private:
  void accept(const char* s, std::size_t n);

  TelemetryHub* hub_;
  SessionId id_;
  std::uint32_t incarnation_;
  std::string pending_;
};

}  // namespace core
