#include "core/cache_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace core {

WorkCounts CacheAwareModel::interpolate(double q) const {
  CCAPERF_REQUIRE(!table_.empty(), "CacheAwareModel: empty work table");
  if (q <= table_.front().q) return table_.front();
  if (q >= table_.back().q) return table_.back();
  auto hi = std::lower_bound(table_.begin(), table_.end(), q,
                             [](const WorkCounts& w, double v) { return w.q < v; });
  const WorkCounts& b = *hi;
  const WorkCounts& a = *(hi - 1);
  const double f = (q - a.q) / (b.q - a.q);
  WorkCounts w;
  w.q = q;
  w.flops = a.flops + f * (b.flops - a.flops);
  w.accesses = a.accesses + f * (b.accesses - a.accesses);
  w.misses = a.misses + f * (b.misses - a.misses);
  return w;
}

double CacheAwareModel::predict(double q) const {
  const WorkCounts w = interpolate(q);
  return c_flop_ * w.flops + c_mem_ * w.accesses + c_miss_ * w.misses;
}

std::string CacheAwareModel::formula() const {
  std::ostringstream os;
  os.precision(4);
  os << c_flop_ << "*FLOPS(Q) + " << c_mem_ << "*ACC(Q) + " << c_miss_
     << "*MISS(Q;cache)";
  return os.str();
}

std::unique_ptr<CacheAwareModel> fit_cache_aware(
    const std::vector<Sample>& timings, const std::vector<WorkCounts>& counts) {
  CCAPERF_REQUIRE(timings.size() >= 3, "fit_cache_aware: need >= 3 samples");
  CCAPERF_REQUIRE(!counts.empty(), "fit_cache_aware: empty work table");

  std::vector<WorkCounts> table = counts;
  std::sort(table.begin(), table.end(),
            [](const WorkCounts& a, const WorkCounts& b) { return a.q < b.q; });

  // Interim model (coefficients unused) to reuse the interpolation.
  CacheAwareModel probe(0, 0, 0, table);

  // Normal equations for t ~ X c with X rows (flops, accesses, misses).
  // Columns are scaled to unit mean magnitude for conditioning.
  double s0 = 0, s1 = 0, s2 = 0;
  std::vector<std::array<double, 3>> rows;
  rows.reserve(timings.size());
  for (const Sample& s : timings) {
    const WorkCounts w = probe.interpolate(s.q);
    rows.push_back({w.flops, w.accesses, w.misses});
    s0 += std::abs(w.flops);
    s1 += std::abs(w.accesses);
    s2 += std::abs(w.misses);
  }
  const double n = static_cast<double>(timings.size());
  const std::array<double, 3> scale{std::max(s0 / n, 1e-30),
                                    std::max(s1 / n, 1e-30),
                                    std::max(s2 / n, 1e-30)};
  std::vector<double> xtx(9, 0.0), xty(3, 0.0);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    std::array<double, 3> x;
    for (int c = 0; c < 3; ++c) x[static_cast<std::size_t>(c)] =
        rows[k][static_cast<std::size_t>(c)] / scale[static_cast<std::size_t>(c)];
    for (int r = 0; r < 3; ++r) {
      xty[static_cast<std::size_t>(r)] += x[static_cast<std::size_t>(r)] * timings[k].t;
      for (int c = 0; c < 3; ++c)
        xtx[static_cast<std::size_t>(r * 3 + c)] +=
            x[static_cast<std::size_t>(r)] * x[static_cast<std::size_t>(c)];
    }
  }
  // Ridge term: the three work dimensions can be nearly collinear (flops
  // and accesses both ~linear in Q); a tiny diagonal keeps the solve
  // stable without visibly biasing resolvable coefficients.
  for (int r = 0; r < 3; ++r) xtx[static_cast<std::size_t>(r * 3 + r)] += 1e-9 * n;

  const auto c_scaled = solve_linear_system(std::move(xtx), std::move(xty), 3);
  auto model = std::make_unique<CacheAwareModel>(
      c_scaled[0] / scale[0], c_scaled[1] / scale[1], c_scaled[2] / scale[2],
      std::move(table));
  score_model(*model, timings, 3);
  return model;
}

std::unique_ptr<CacheAwareModel> retarget(const CacheAwareModel& calibrated,
                                          std::vector<WorkCounts> new_table) {
  std::sort(new_table.begin(), new_table.end(),
            [](const WorkCounts& a, const WorkCounts& b) { return a.q < b.q; });
  return std::make_unique<CacheAwareModel>(calibrated.c_flop(), calibrated.c_mem(),
                                           calibrated.c_miss(),
                                           std::move(new_table));
}

std::unique_ptr<CacheAwareModel> retarget(const CacheAwareModel& calibrated,
                                          const WorkCounter& counter,
                                          const hwc::CacheSim& geometry) {
  CCAPERF_REQUIRE(counter != nullptr, "retarget: null work counter");
  std::vector<WorkCounts> table;
  table.reserve(calibrated.table().size());
  for (const WorkCounts& w : calibrated.table())
    table.push_back(counter(w.q, geometry));
  return retarget(calibrated, std::move(table));
}

double max_relative_prediction_error(const PerfModel& a, const PerfModel& b,
                                     const std::vector<double>& qs) {
  CCAPERF_REQUIRE(!qs.empty(), "max_relative_prediction_error: no Q values");
  double worst = 0.0;
  for (double q : qs) {
    const double ref = b.predict(q);
    if (std::abs(ref) < 1e-30) continue;
    worst = std::max(worst, std::abs(a.predict(q) - ref) / std::abs(ref));
  }
  return worst;
}

double max_relative_prediction_error(const CacheAwareModel& a,
                                     const CacheAwareModel& reference) {
  std::vector<double> qs;
  qs.reserve(reference.table().size());
  for (const WorkCounts& w : reference.table()) qs.push_back(w.q);
  return max_relative_prediction_error(a, reference, qs);
}

}  // namespace core
