#pragma once
// Cache-parameterized performance models — the paper's stated future work
// (§6): "Any significant change, such as halving of the cache size, will
// have a large effect on the coefficients in the models... Ideally, the
// coefficients should be parameterized by processor speed and a cache
// model. We will address this in future work, where the cache information
// collected during these tests will be employed."
//
// CacheAwareModel does exactly that. Instead of fitting T(Q) directly, it
// decomposes the cost into architecture-neutral work counts obtained from
// the hwc substrate —
//     T(Q) ~ c_flop * FLOPS(Q) + c_mem * ACCESSES(Q) + c_miss * MISSES(Q; cache)
// — and calibrates the three machine coefficients by least squares against
// measured timings. FLOPS/ACCESSES depend only on the algorithm; MISSES
// comes from replaying the kernel through a CacheSim with the *target*
// machine's geometry. Re-predicting for a different cache is then just
// re-simulating MISSES — no re-measurement needed.

#include <functional>
#include <memory>
#include <vector>

#include "core/modeling.hpp"
#include "hwc/cache_sim.hpp"

namespace core {

/// Architecture-neutral work counts of one kernel invocation at size Q.
struct WorkCounts {
  double q = 0.0;
  double flops = 0.0;
  double accesses = 0.0;  ///< loads + stores issued
  double misses = 0.0;    ///< misses at the modeled cache level
};

/// Produces the work counts for a given Q under a given cache geometry
/// (typically: run the kernel with an hwc::CacheProbe).
using WorkCounter = std::function<WorkCounts(double q, const hwc::CacheSim& geometry)>;

/// T(Q) = c_flop*FLOPS + c_mem*ACCESSES + c_miss*MISSES, with coefficients
/// calibrated on one machine and MISSES re-simulated per cache geometry.
class CacheAwareModel final : public PerfModel {
 public:
  CacheAwareModel(double c_flop, double c_mem, double c_miss,
                  std::vector<WorkCounts> table)
      : c_flop_(c_flop), c_mem_(c_mem), c_miss_(c_miss), table_(std::move(table)) {}

  /// Predicts from the work-count table (piecewise-linear in Q between
  /// tabulated points; clamped at the ends).
  double predict(double q) const override;
  std::string formula() const override;
  std::string family() const override { return "cache-aware"; }

  double c_flop() const { return c_flop_; }
  double c_mem() const { return c_mem_; }
  double c_miss() const { return c_miss_; }
  const std::vector<WorkCounts>& table() const { return table_; }

  /// Work counts at Q, piecewise-linear between tabulated points.
  WorkCounts interpolate(double q) const;

 private:
  double c_flop_, c_mem_, c_miss_;
  std::vector<WorkCounts> table_;  // sorted by q
};

/// Calibrates the machine coefficients against measured (Q, time) samples:
/// least squares over the three work dimensions (non-negative solution is
/// not enforced; near-zero/negative coefficients indicate a dimension the
/// timings cannot resolve). `counts` must cover the sampled Q values
/// (nearest tabulated point is used).
std::unique_ptr<CacheAwareModel> fit_cache_aware(
    const std::vector<Sample>& timings, const std::vector<WorkCounts>& counts);

/// Transfers a calibrated model to a different cache: same coefficients,
/// re-simulated miss table.
std::unique_ptr<CacheAwareModel> retarget(const CacheAwareModel& calibrated,
                                          std::vector<WorkCounts> new_table);

/// Convenience overload: rebuilds the miss table by running `counter` (a
/// traced-kernel replay, typically through hwc::CacheProbe's batched run
/// API) at every tabulated Q of the calibrated model under `geometry`.
std::unique_ptr<CacheAwareModel> retarget(const CacheAwareModel& calibrated,
                                          const WorkCounter& counter,
                                          const hwc::CacheSim& geometry);

/// Largest relative gap |a.predict(q) - b.predict(q)| / |b.predict(q)|
/// over `qs` (b is the reference; points where b predicts ~0 are skipped).
/// This is the agreement gate between a model fitted from sampled-mode
/// work counts and one fitted from exact counts (DESIGN.md §11).
double max_relative_prediction_error(const PerfModel& a, const PerfModel& b,
                                     const std::vector<double>& qs);

/// Overload evaluating at the reference model's tabulated Q values.
double max_relative_prediction_error(const CacheAwareModel& a,
                                     const CacheAwareModel& reference);

}  // namespace core
