#pragma once
// Component assembly optimization (paper §2/§6; Furmento et al.'s
// approach adapted to CCA): "With n components, each having Ci
// implementations, there is a total of prod(Ci) implementations to choose
// from. ... The implementation with the lowest execution time or lowest
// cost is then selected." The composite model is the dual-graph cost
// function with a variable per slot; evaluating a choice substitutes the
// implementation's performance model.
//
// Quality of Service: "the performance of a component implementation
// would be viewed with respect to the size of the problem as well as the
// quality of the solution produced by it" — the cost function optionally
// penalizes inaccurate implementations via `accuracy_weight`.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/modeling.hpp"
#include "core/pattern_model.hpp"

namespace core {

/// One candidate implementation of a functionality slot.
struct Candidate {
  std::string class_name;
  const PerfModel* time_model = nullptr;  ///< per-invocation time vs Q
  double accuracy = 1.0;                  ///< QoS score in [0, 1]
};

/// A replaceable position in the assembly: every candidate provides the
/// same port type; the workload is `invocations` calls at sizes `qs`
/// (typically the distinct patch sizes seen by the call path, each with
/// its own count).
struct Slot {
  std::string functionality;  ///< e.g. "FluxPort"
  std::vector<Candidate> candidates;
  /// Workload: (Q, number of invocations at that Q).
  std::vector<std::pair<double, double>> workload;
};

/// One fully specified assembly and its evaluation.
struct AssemblyChoice {
  std::map<std::string, std::string> selection;  ///< slot -> class name
  double predicted_time_us = 0.0;
  double min_accuracy = 1.0;
  /// cost = time * (1 + w * (1 - min_accuracy)): pure time at w = 0,
  /// increasingly accuracy-dominated as w grows.
  double cost = 0.0;
};

class AssemblyOptimizer {
 public:
  /// `fixed_time_us`: predicted time of the non-replaceable rest of the
  /// dual (it shifts every choice equally but keeps costs interpretable).
  explicit AssemblyOptimizer(double fixed_time_us = 0.0)
      : fixed_time_us_(fixed_time_us) {}

  void add_slot(Slot slot);

  /// Exhaustively evaluates all prod(Ci) assemblies at the given QoS
  /// weight, best (lowest cost) first (stable: equal-cost assemblies keep
  /// enumeration order).
  std::vector<AssemblyChoice> evaluate_all(double accuracy_weight = 0.0) const;

  /// Search effort counters for the branch-and-bound selection.
  struct SearchStats {
    std::size_t nodes_visited = 0;   ///< partial assignments expanded
    std::size_t leaves_evaluated = 0;  ///< complete assemblies costed
    std::size_t subtrees_pruned = 0;   ///< bound cuts
  };

  /// Best assembly by branch-and-bound: depth-first over slots with a
  /// per-slot lower bound (remaining slots contribute at least their
  /// cheapest candidate's time; the QoS factor can only grow as more slots
  /// bind), pruning subtrees that cannot beat the incumbent. Exact — the
  /// winner is identical to exhaustive enumeration, including tie-breaking
  /// (lowest candidate indices in slot insertion order win ties).
  AssemblyChoice best(double accuracy_weight = 0.0,
                      SearchStats* stats = nullptr) const;

  /// Reference implementation: full enumeration with the same
  /// deterministic tie-break. Kept for tests and ablations.
  AssemblyChoice best_exhaustive(double accuracy_weight = 0.0) const;

  std::size_t assembly_count() const;

  // --- joint assembly x ranks x threads search (DESIGN.md §13) ---------------
  // The per-slot time sum above cannot rank *configurations*: a rank or
  // lane count changes every term at once. The joint search evaluates
  // candidates through a composed PatternModel instead — slot i of the
  // optimizer binds to slot leaf i of the tree (creation order on both
  // sides), and a candidate substitutes its time model into that leaf.
  // `fixed_time_us` is ignored here: the tree models the whole app.

  /// One fully specified (assembly, ranks, threads) point.
  struct JointChoice {
    std::map<std::string, std::string> selection;  ///< slot -> class name
    int ranks = 1;
    int threads = 1;
    double predicted_us = 0.0;  ///< tree.predict at the chosen point
    double min_accuracy = 1.0;
    double cost = 0.0;  ///< predicted_us * (1 + w * (1 - min_accuracy))
  };

  /// Best (assembly, ranks, threads) by branch-and-bound: configurations
  /// enumerate in grid order (ranks major, threads minor); within each, a
  /// DFS over slots bounds partial assignments by completing unassigned
  /// slot leaves with their cheapest candidate's value — a valid lower
  /// bound because predict() is monotone non-decreasing in every slot
  /// value. Exact: identical to best_joint_exhaustive, including the
  /// tie-break (earliest grid point, then lowest candidate indices).
  /// `base.q` supplies the problem size; base.ranks/threads are ignored.
  /// Requires tree.slot_count() == the number of added slots.
  JointChoice best_joint(const PatternModel& tree, const PatternConfig& base,
                         const std::vector<int>& ranks_grid,
                         const std::vector<int>& threads_grid,
                         double accuracy_weight = 0.0,
                         SearchStats* stats = nullptr) const;

  /// Reference: full enumeration over the same grid with the same
  /// deterministic tie-break. Kept for tests and ablations.
  JointChoice best_joint_exhaustive(const PatternModel& tree,
                                    const PatternConfig& base,
                                    const std::vector<int>& ranks_grid,
                                    const std::vector<int>& threads_grid,
                                    double accuracy_weight = 0.0) const;

 private:
  double slot_time(const Slot& slot, const Candidate& c) const;
  AssemblyChoice make_choice(const std::vector<std::size_t>& pick,
                             double accuracy_weight) const;

  double fixed_time_us_;
  std::vector<Slot> slots_;
};

}  // namespace core
