#pragma once
// MastermindComponent — gathering, storing and reporting of measurement
// data (paper §4.3).
//
// For each monitored method a Record holds one row per call: the
// proxy-extracted parameters, wall-clock time, MPI time (difference of the
// TAU "MPI" group inclusive sum queried before and after the invocation —
// "TAU measurements are made cumulatively, so in order to obtain the
// measurements for a single invocation, measurements must be made prior to
// the invocation and again after"), compute time (wall - MPI), and
// hardware-counter deltas. On destruction (or on demand) records dump
// their data to CSV files.
//
// Storage is columnar (structure-of-arrays): each metric, parameter and
// counter lives in its own chunked append-only column, so the per-call
// append is a handful of doubles pushed into pre-grown chunks — no
// per-invocation structs, maps or strings — and dump_csv/samples stream a
// column instead of walking heap-heavy rows. The row-oriented Invocation
// view survives as a materialized compatibility cache.

#include <cmath>
#include <atomic>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/governor.hpp"
#include "core/modeling.hpp"
#include "core/ports.hpp"
#include "tau/shards.hpp"

namespace core {

/// Append-only column of doubles stored in fixed-size chunks: appends are
/// amortized O(1) with no reallocation-copies, reads are stable, and one
/// allocation buys kChunk further zero-allocation appends.
class ChunkedColumn {
 public:
  static constexpr std::size_t kChunk = 4096;

  std::size_t size() const { return size_; }

  void push_back(double v) {
    const std::size_t slot = size_ % kChunk;
    if (slot == 0) chunks_.push_back(std::make_unique<double[]>(kChunk));
    chunks_.back()[slot] = v;
    ++size_;
  }

  double operator[](std::size_t i) const { return chunks_[i / kChunk][i % kChunk]; }

  /// Pads with `fill` up to `n` entries (used to mark rows where an
  /// optional column has no value).
  void pad_to(std::size_t n, double fill) {
    while (size_ < n) push_back(fill);
  }

 private:
  std::vector<std::unique_ptr<double[]>> chunks_;
  std::size_t size_ = 0;
};

/// One monitored method call — the row-oriented *view* of a Record, kept
/// for compatibility with pre-columnar callers (see Record::invocations).
struct Invocation {
  ParamMap params;
  double wall_us = 0.0;
  double mpi_us = 0.0;
  double compute_us = 0.0;  ///< wall - mpi (requirement 3 of §3.2)
  std::vector<std::pair<std::string, double>> counters;  ///< hw metric deltas
};

/// All invocations of one monitored method, stored column-wise. Absent
/// values (a parameter or counter that did not apply to a row) are NaN.
class Record {
 public:
  explicit Record(std::string method) : method_(std::move(method)) {}

  const std::string& method() const { return method_; }
  std::size_t count() const { return wall_.size(); }

  // --- columnar access -------------------------------------------------------

  double wall_us(std::size_t i) const { return wall_[i]; }
  double mpi_us(std::size_t i) const { return mpi_[i]; }
  double compute_us(std::size_t i) const { return compute_[i]; }

  /// Names of the parameter / counter columns, in creation order.
  std::vector<std::string> param_names() const;
  std::vector<std::string> counter_names() const;

  /// Column index for a parameter/counter, creating the column (NaN
  /// backfilled for existing rows) on first use.
  std::size_t ensure_param_column(std::string_view name);
  std::size_t ensure_counter_column(std::string_view name);

  /// Value at row `i` of the named column; NaN when absent.
  double param_at(std::size_t i, std::string_view name) const;
  double counter_at(std::size_t i, std::string_view name) const;

  // --- appending (one row = one invocation) ----------------------------------
  // add_times() opens row count()-1; set_param/set_counter fill optional
  // columns of that row; finish_row() NaN-pads the rest and feeds any
  // attached streaming fits.

  void add_times(double wall_us, double mpi_us, double compute_us);
  void set_param(std::size_t column, double value);
  void set_counter(std::size_t column, double value);
  void finish_row();

  /// Row-oriented convenience append (the pre-columnar API).
  void add(const Invocation& inv);

  // --- consumption -----------------------------------------------------------

  /// CSV: one row per invocation; params and counters become columns.
  void dump_csv(std::ostream& os) const;

  /// Samples (param value, metric) for model fitting. `metric` selects
  /// wall/compute/mpi time; invocations lacking the parameter are skipped.
  enum class Metric { wall, compute, mpi };
  std::vector<std::pair<double, double>> samples(const std::string& param,
                                                 Metric metric = Metric::wall) const;

  /// Same, with the metric source named: "wall", "compute", "mpi", or any
  /// hardware-counter column (e.g. "PAPI_L2_DCM" for the Fig. 5
  /// cache-access-ratio models). Unknown counters yield no samples.
  std::vector<std::pair<double, double>> samples(const std::string& param,
                                                 const std::string& metric_source) const;

  /// Attaches a streaming model fit: existing rows are folded in once,
  /// then every subsequent row updates the fit in O(1) (no re-scan at fit
  /// time). Returns a reference stable for the Record's lifetime.
  StreamingFitSet& attach_stream(const std::string& param, Metric metric,
                                 int max_poly_degree = 2);

  /// Row-oriented view, materialized lazily and extended incrementally.
  /// Prefer the columnar accessors on hot paths.
  const std::vector<Invocation>& invocations() const;

 private:
  struct NamedColumn {
    std::string name;
    ChunkedColumn data;
  };
  struct Stream {
    std::size_t param_col;
    Metric metric;
    std::unique_ptr<StreamingFitSet> fit;
  };

  const NamedColumn* find_param(std::string_view name) const;
  const NamedColumn* find_counter(std::string_view name) const;
  double metric_at(std::size_t i, Metric m) const;
  /// Rows fully appended — excludes the row opened by add_times() until
  /// finish_row() closes it (new columns backfill to this length).
  std::size_t completed_rows() const { return in_row_ ? count() - 1 : count(); }

  std::string method_;
  ChunkedColumn wall_, mpi_, compute_;
  std::vector<NamedColumn> params_;
  std::vector<NamedColumn> counters_;
  std::vector<Stream> streams_;
  bool in_row_ = false;
  mutable std::vector<Invocation> rows_cache_;  // invocations() shim
};

class MastermindComponent final : public cca::Component,
                                  public MonitorPort,
                                  public TelemetryPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<MonitorPort*>(this)),
                          "monitor", "pmm.MonitorPort");
    svc.add_provides_port(cca::non_owning(static_cast<TelemetryPort*>(this)),
                          "telemetry", "pmm.TelemetryPort");
    svc.register_uses_port("measurement", "pmm.MeasurementPort");
  }

  // Handle fast path (allocation-free in steady state).
  MethodHandle register_method(const std::string& method_key,
                               const std::vector<std::string>& param_names) override;
  void start(MethodHandle method, ParamSpan params) override;
  void stop(MethodHandle method) override;

  // String-keyed compatibility shim over the same records.
  void start(const std::string& method_key, const ParamMap& params) override;
  void stop(const std::string& method_key) override;

  // Live telemetry (pmm.TelemetryPort).
  void start_telemetry(std::ostream& sink, std::uint64_t interval_records) override;
  void stop_telemetry() override;
  void emit_telemetry() override;
  std::uint64_t telemetry_lines() const override { return telem_lines_; }
  double telemetry_self_us() const override { return telem_self_us_; }

  const Record* record(const std::string& method_key) const;
  std::vector<std::string> method_keys() const;

  // --- overhead governor (DESIGN.md §12) -------------------------------------
  // The Mastermind is the governor's plumbing: it accounts measurement
  // self-cost (clock brackets around its own monitoring work plus any
  // registered cost sources), feeds (wall, self, records) windows to the
  // controller at outermost-stop boundaries, and applies the returned
  // Settings — telemetry interval, registry trace tier, monitor record
  // sampling, and the cache-sim stride via the actuator callback. Nothing
  // here runs unless a governor is attached, so ungoverned runs stay
  // byte-identical.

  /// Attaches the controller (borrowed; must outlive the component) and
  /// registers the GOVERNOR_* counter sources with the registry. Requires
  /// the measurement port to be connected.
  void attach_governor(OverheadGovernor* gov);
  OverheadGovernor* governor() const { return gov_; }

  /// Registers a cumulative measurement-cost source (monotone microsecond
  /// total, e.g. the priced cache-sim access count) folded into every
  /// governor window's self-cost.
  void add_cost_source(std::string name, std::function<double()> cumulative_us);

  /// Called with the governor-chosen cache-sim sampling stride whenever a
  /// tier transition changes it (CacheSim::adjust_sample_stride plumbing).
  void set_counter_stride_actuator(std::function<void(std::uint32_t)> fn);

  /// Fires `fn` after every outermost (depth-0) stop of `method_key`, once
  /// the monitoring bookkeeping and locks are released — the regrid-boundary
  /// seam the OnlineRefitter hangs off.
  void set_boundary_hook(const std::string& method_key, std::function<void()> fn);

  /// Surfaces the chosen hardware-counter backend ("sim", "perf", ...) as
  /// an `hwc` metadata field on every telemetry line.
  void set_telemetry_hwc(std::string backend);

  /// Tags every telemetry line with a `session` metadata field — the
  /// TelemetryHub sets this to the owning session's name so cross-session
  /// leakage is detectable from the lines themselves (a retained line in
  /// session S must carry S's marker). Empty = omit the field.
  void set_telemetry_session(std::string name);

  /// Monitored-call recording fraction for one method: rows recorded /
  /// invocations seen (1.0 while unsampled). Streaming-fit consumers
  /// rescale workload *counts* by its inverse (PR 7 discipline).
  double realized_fraction(const std::string& method_key) const;

  /// Current governor-applied monitor sampling stride (1 = record all).
  std::uint32_t monitor_stride() const { return gov_monitor_stride_; }

  /// Appends a governor event line (`{"t_us":...,"governor":{"event":kind,
  /// ...fields}}`) to the telemetry sink when active, plus a trace instant.
  /// `fields_json` is a comma-joined list of pre-escaped JSON members.
  void emit_governor_event(const char* kind, const std::string& fields_json);

  /// Caller->callee invocation counts among *monitored* methods, detected
  /// from monitoring nesting (paper §6: "a call trace (detected and
  /// recorded by the performance infrastructure)" feeds the composite
  /// model). An edge ("", child) counts top-level invocations.
  struct CallEdge {
    std::string caller;  ///< empty for top-level
    std::string callee;
    std::uint64_t count = 0;
  };
  const std::vector<CallEdge>& call_edges() const { return edges_; }
  /// Count for one specific edge (0 if absent).
  std::uint64_t call_count(const std::string& caller, const std::string& callee) const;

  /// Writes every record to `<dir>/<sanitized method>.rank<r>.csv`.
  void dump_all(const std::string& dir, int rank) const;

  /// If set, records are dumped on destruction (the paper's "when a record
  /// object is destroyed, it outputs to a file all of the measurement
  /// data").
  void set_dump_on_destroy(std::string dir, int rank) {
    dump_dir_ = std::move(dir);
    dump_rank_ = rank;
  }

  ~MastermindComponent() override;

 private:
  struct Method {
    std::string key;
    std::vector<std::string> param_names;   ///< handle-path positional names
    std::vector<std::size_t> param_cols;    ///< record columns, same order
    std::unique_ptr<Record> record;
    tau::TimerId timer = 0;
    bool timer_resolved = false;
    // Counter columns for the registry's current counter layout, resolved
    // lazily and re-resolved only when counters are added.
    std::vector<std::size_t> counter_cols;
    // Trace-string index of the first parameter's name, attached to the
    // method's trace slice as its argument (e.g. "Q") while tracing.
    std::uint32_t arg_string = 0;
    bool arg_string_resolved = false;
    // Threaded mode (DESIGN.md §9): worker lanes time into their own
    // registry shards, so timer ids and trace-string ids are per lane.
    // Each lane only ever touches its own slot (sized before any region).
    std::vector<tau::TimerId> lane_timer;
    std::vector<char> lane_timer_ok;
    std::vector<std::uint32_t> lane_arg_string;
    std::vector<char> lane_arg_ok;
    std::size_t thread_col = 0;  ///< "thread" param column (threaded only)
    // Monitor-sampling tallies (governor actuation): every invocation is
    // seen; only sampled ones append a row. Their ratio is the realized
    // recording fraction that keeps downstream fits unbiased.
    std::uint64_t calls_seen = 0;
    std::uint64_t calls_recorded = 0;
  };

  /// In-flight monitored call. Pooled: popped entries keep their buffers,
  /// so steady-state start/stop never allocates.
  struct Open {
    MethodHandle method = kInvalidMethodHandle;
    double param_vals[kMaxMethodParams] = {};
    std::uint32_t n_params = 0;
    /// Shim-path parameters (arbitrary names): (record column, value).
    std::vector<std::pair<std::size_t, double>> extra_params;
    double mpi_us_start = 0.0;
    tau::Generation gen_start = 0;
    std::vector<std::uint64_t> counters_start;
    /// False when monitor sampling elides this activation's row (the timer
    /// still runs; snapshots and the record append are skipped).
    bool sampled = true;
  };

  /// Per-lane LIFO of in-flight calls. Lane 0 is the rank thread; worker
  /// lanes get their own stacks so monitored calls inside a parallel
  /// region nest independently (each lane only touches its own state).
  struct LaneState {
    std::vector<Open> open;  // pooled, like the old open_
    std::size_t depth = 0;
  };

  tau::Registry& registry();
  tau::Registry& resolve_measurement();
  void init_method_lane_state(Method& m);
  MethodHandle intern_method(std::string_view key);
  MethodHandle intern_method_unlocked(std::string_view key);
  Method& method_ref(MethodHandle h);
  Open& push_open(LaneState& lane, MethodHandle h);
  void refresh_counter_columns(Method& m);
  void count_edge(MethodHandle caller, MethodHandle callee);
  void start_on_lane(MethodHandle method, ParamSpan params, const ParamMap* extra,
                     int lane);
  void stop_on_lane(MethodHandle method, int lane);
  void emit_telemetry_unlocked();
  /// Deterministic 1-in-N monitor sampling decision for the n-th seen call.
  bool sample_decision(std::uint64_t nth_call) const {
    return gov_monitor_stride_ <= 1 ||
           (nth_call - 1 + gov_seed_) % gov_monitor_stride_ == 0;
  }
  double self_total_unlocked() const;
  void governor_window_unlocked(tau::Registry& reg);
  void apply_governor_settings_unlocked(tau::Registry& reg,
                                        const OverheadGovernor::Decision& d);
  void emit_governor_line_unlocked(const OverheadGovernor::Decision& d);
  std::uint32_t governor_instant_string(tau::Registry& reg, bool throttle,
                                        int level);

  cca::Services* svc_ = nullptr;
  tau::Registry* reg_ = nullptr;          // resolved once through the port
  tau::GroupId mpi_group_ = 0;            // interned with the registry
  tau::RegistryShards* shards_ = nullptr;  // borrowed from MeasurementPort
  bool threaded_ = false;                  // lanes > 1 once resolved
  std::atomic<bool> resolved_{false};      // measurement port resolved
  mutable std::mutex mu_;                  // guards shared state (threaded only)
  std::deque<Method> methods_;             // deque: stable refs under growth
  std::atomic<std::size_t> methods_count_{0};
  std::vector<LaneState> lanes_{1};        // [0] = rank thread
  std::vector<std::uint64_t> counters_scratch_;
  std::vector<CallEdge> edges_;
  std::vector<std::pair<MethodHandle, MethodHandle>> edge_ids_;  // parallel
  std::optional<std::string> dump_dir_;
  int dump_rank_ = 0;

  // Telemetry state. All clock reads for self-overhead accounting are
  // gated on telem_sink_ so the monitoring fast path is untouched when
  // telemetry is off.
  void maybe_emit_telemetry();
  std::ostream* telem_sink_ = nullptr;       // borrowed; null = inactive
  std::uint64_t telem_interval_ = 1;
  std::uint64_t telem_lines_ = 0;
  std::uint64_t telem_records_ = 0;          // rows finished while active
  std::uint64_t telem_records_last_ = 0;     // at the previous line
  tau::Generation telem_gen_ = 0;            // snapshot_delta low-water mark
  tau::Clock::time_point telem_start_{};
  tau::Clock::time_point telem_last_{};
  double telem_self_us_ = 0.0;
  double telem_self_last_ = 0.0;             // at the previous line (overhead_pct)
  std::uint64_t telem_interval_base_ = 1;    // before the governor multiplier
  std::string hwc_backend_;                  // "" = omit the metadata field
  std::string session_label_;                // "" = omit the metadata field
  std::vector<std::uint64_t> telem_counters_last_;
  std::vector<double> telem_group_last_;     // per-GroupId inclusive_us

  // Governor state (all inert while gov_ == nullptr). Windows are counted
  // in monitored invocations (sampled or not) so a heavily-thinned monitor
  // still reaches decision points; self-cost markers are cumulative so a
  // window's cost is a difference of two monotone totals.
  OverheadGovernor* gov_ = nullptr;
  std::uint64_t gov_seed_ = 0;
  std::uint32_t gov_monitor_stride_ = 1;
  std::uint64_t gov_calls_ = 0;              // lane-0 outermost stops
  std::uint64_t gov_calls_last_ = 0;
  double gov_self_last_ = 0.0;
  tau::Clock::time_point gov_last_{};
  std::vector<std::pair<std::string, std::function<double()>>> cost_sources_;
  std::function<void(std::uint32_t)> counter_stride_actuator_;
  std::function<void()> boundary_hook_;
  MethodHandle boundary_method_ = kInvalidMethodHandle;
  // Interned instant labels per (direction, level), resolved lazily.
  std::vector<std::uint32_t> gov_instant_ids_;
  std::vector<char> gov_instant_ok_;
};

}  // namespace core
