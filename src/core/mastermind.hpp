#pragma once
// MastermindComponent — gathering, storing and reporting of measurement
// data (paper §4.3).
//
// For each monitored method a Record holds one Invocation per call:
// the proxy-extracted parameters, wall-clock time, MPI time (difference of
// the TAU "MPI" group inclusive sum queried before and after the
// invocation — "TAU measurements are made cumulatively, so in order to
// obtain the measurements for a single invocation, measurements must be
// made prior to the invocation and again after"), compute time
// (wall - MPI), and hardware-counter deltas. On destruction (or on
// demand) records dump their data to CSV files.

#include <iosfwd>
#include <optional>
#include <vector>

#include "core/ports.hpp"

namespace core {

/// One monitored method call.
struct Invocation {
  ParamMap params;
  double wall_us = 0.0;
  double mpi_us = 0.0;
  double compute_us = 0.0;  ///< wall - mpi (requirement 3 of §3.2)
  std::vector<std::pair<std::string, double>> counters;  ///< hw metric deltas
};

/// All invocations of one monitored method.
class Record {
 public:
  explicit Record(std::string method) : method_(std::move(method)) {}

  const std::string& method() const { return method_; }
  const std::vector<Invocation>& invocations() const { return invocations_; }
  std::size_t count() const { return invocations_.size(); }

  void add(Invocation inv) { invocations_.push_back(std::move(inv)); }

  /// CSV: one row per invocation; params and counters become columns.
  void dump_csv(std::ostream& os) const;

  /// Samples (param value, metric) for model fitting. `metric` selects
  /// wall/compute/mpi time; invocations lacking the parameter are skipped.
  enum class Metric { wall, compute, mpi };
  std::vector<std::pair<double, double>> samples(const std::string& param,
                                                 Metric metric = Metric::wall) const;

 private:
  std::string method_;
  std::vector<Invocation> invocations_;
};

class MastermindComponent final : public cca::Component, public MonitorPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<MonitorPort*>(this)),
                          "monitor", "pmm.MonitorPort");
    svc.register_uses_port("measurement", "pmm.MeasurementPort");
  }

  void start(const std::string& method_key, const ParamMap& params) override;
  void stop(const std::string& method_key) override;

  const Record* record(const std::string& method_key) const;
  std::vector<std::string> method_keys() const;

  /// Caller->callee invocation counts among *monitored* methods, detected
  /// from monitoring nesting (paper §6: "a call trace (detected and
  /// recorded by the performance infrastructure)" feeds the composite
  /// model). An edge ("", child) counts top-level invocations.
  struct CallEdge {
    std::string caller;  ///< empty for top-level
    std::string callee;
    std::uint64_t count = 0;
  };
  const std::vector<CallEdge>& call_edges() const { return edges_; }
  /// Count for one specific edge (0 if absent).
  std::uint64_t call_count(const std::string& caller, const std::string& callee) const;

  /// Writes every record to `<dir>/<sanitized method>.rank<r>.csv`.
  void dump_all(const std::string& dir, int rank) const;

  /// If set, records are dumped on destruction (the paper's "when a record
  /// object is destroyed, it outputs to a file all of the measurement
  /// data").
  void set_dump_on_destroy(std::string dir, int rank) {
    dump_dir_ = std::move(dir);
    dump_rank_ = rank;
  }

  ~MastermindComponent() override;

 private:
  struct Open {
    std::string key;
    ParamMap params;
    tau::Clock::time_point wall_start;
    double mpi_us_start = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters_start;
  };

  tau::Registry& registry();

  void count_edge(const std::string& caller, const std::string& callee);

  cca::Services* svc_ = nullptr;
  std::vector<std::pair<std::string, Record>> records_;
  std::vector<Open> open_;  // LIFO of in-flight monitored calls
  std::vector<CallEdge> edges_;
  std::optional<std::string> dump_dir_;
  int dump_rank_ = 0;
};

}  // namespace core
