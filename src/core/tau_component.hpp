#pragma once
// TauMeasurementComponent — the TAU component of §4.1.
//
// Owns the rank's tau::Registry and exposes it through MeasurementPort.
// On creation it installs the PMPI-style hook adapter so every mpp call on
// this rank is timed under the "MPI" group ("at runtime, a user can enable
// or disable all MPI timers via their group identifier" — via
// registry().set_group_enabled(tau::kMpiGroup, ...)).
//
// Multi-threaded ranks (CCAPERF_THREADS > 1, DESIGN.md §9): the component
// sizes a tau::RegistryShards set to the rank's thread pool and installs
// the pool's region-end hook, so per-lane measurements fold into the
// primary registry after every parallel region — that hook is the
// "barrier point" where the merged view becomes visible to snapshots,
// telemetry and trace export. With one lane the shard set is empty and
// the hook is never installed, leaving the serial path untouched.
//
// The component must be created and destroyed on its rank's thread (true
// under the SCMD assembly, where each rank owns its framework).

#include <memory>

#include "core/ports.hpp"
#include "support/thread_pool.hpp"
#include "tau/mpi_adapter.hpp"
#include "tau/shards.hpp"

namespace core {

class TauMeasurementComponent final : public cca::Component, public MeasurementPort {
 public:
  TauMeasurementComponent()
      : adapter_(registry_), installer_(std::make_unique<mpp::HooksInstaller>(&adapter_)) {
    ccaperf::ThreadPool& pool = ccaperf::rank_pool();
    shards_ = std::make_unique<tau::RegistryShards>(registry_, pool.size());
    if (pool.size() > 1) {
      pool_ = &pool;
      pool_->set_region_end_hook([this] { shards_->merge_into_primary(); });
    }
  }

  ~TauMeasurementComponent() override {
    if (pool_ != nullptr) pool_->set_region_end_hook(nullptr);
    installer_.reset();  // uninstall hooks before the registry dies
  }

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<MeasurementPort*>(this)),
                          "measurement", "pmm.MeasurementPort");
  }

  tau::Registry& registry() override { return registry_; }
  tau::RegistryShards* shards() override { return shards_.get(); }

  /// Re-mirrors the primary's tracing state onto the shards; call after
  /// arming/disarming tracing on registry() (assemble_instrumented_app
  /// does this when CCAPERF_TRACE is set).
  void sync_shard_tracing() { shards_->mirror_tracing(); }

 private:
  tau::Registry registry_;
  tau::MpiHookAdapter adapter_;
  std::unique_ptr<mpp::HooksInstaller> installer_;
  std::unique_ptr<tau::RegistryShards> shards_;
  ccaperf::ThreadPool* pool_ = nullptr;  // non-null only when lanes > 1
};

}  // namespace core
