#pragma once
// TauMeasurementComponent — the TAU component of §4.1.
//
// Owns the rank's tau::Registry and exposes it through MeasurementPort.
// On creation it installs the PMPI-style hook adapter so every mpp call on
// this rank is timed under the "MPI" group ("at runtime, a user can enable
// or disable all MPI timers via their group identifier" — via
// registry().set_group_enabled(tau::kMpiGroup, ...)).
//
// The component must be created and destroyed on its rank's thread (true
// under the SCMD assembly, where each rank owns its framework).

#include <memory>

#include "core/ports.hpp"
#include "tau/mpi_adapter.hpp"

namespace core {

class TauMeasurementComponent final : public cca::Component, public MeasurementPort {
 public:
  TauMeasurementComponent()
      : adapter_(registry_), installer_(std::make_unique<mpp::HooksInstaller>(&adapter_)) {}

  ~TauMeasurementComponent() override {
    installer_.reset();  // uninstall hooks before the registry dies
  }

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<MeasurementPort*>(this)),
                          "measurement", "pmm.MeasurementPort");
  }

  tau::Registry& registry() override { return registry_; }

 private:
  tau::Registry registry_;
  tau::MpiHookAdapter adapter_;
  std::unique_ptr<mpp::HooksInstaller> installer_;
};

}  // namespace core
