#pragma once
// Performance-model construction (paper §5, Eqs. 1-2).
//
// From a Record's (Q, time) samples:
//  1. bin by Q and compute per-bin mean and standard deviation ("for
//     performance modeling purposes, we consider an average. However, we
//     also include a standard deviation in our analysis to track the
//     variability introduced by the cache");
//  2. fit candidate functional forms by least squares — polynomials
//     (normal equations, Gaussian elimination with partial pivoting),
//     power laws T = exp(a ln Q + b) (linear in log-log), and exponentials
//     sigma = exp(a + b Q) (linear in semi-log) — the forms of Eq. 1-2;
//  3. select the best candidate by adjusted R^2.

#include <memory>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace core {

/// One (parameter, time) observation.
struct Sample {
  double q = 0.0;
  double t = 0.0;
};

/// Per-Q aggregate of repeated observations.
struct Bin {
  double q = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Groups samples by (exact) Q value, ascending.
std::vector<Bin> bin_by_q(const std::vector<Sample>& samples);

/// A fitted performance model T(Q).
class PerfModel {
 public:
  virtual ~PerfModel() = default;
  virtual double predict(double q) const = 0;
  /// Human-readable formula in the paper's style, e.g.
  /// "exp(1.19 log(Q) - 3.68)" or "-963 + 0.315 Q".
  virtual std::string formula() const = 0;
  virtual std::string family() const = 0;

  double r2 = 0.0;           ///< coefficient of determination on the fit data
  double adjusted_r2 = 0.0;  ///< penalized by parameter count
};

/// Polynomial sum_k c_k Q^k (degree = coefficients.size()-1).
class PolynomialModel final : public PerfModel {
 public:
  explicit PolynomialModel(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {}
  double predict(double q) const override;
  std::string formula() const override;
  std::string family() const override { return "polynomial"; }
  const std::vector<double>& coefficients() const { return coeffs_; }

 private:
  std::vector<double> coeffs_;
};

/// T = exp(a ln Q + b) = e^b Q^a  (the paper's States model form).
class PowerLawModel final : public PerfModel {
 public:
  PowerLawModel(double a, double b) : a_(a), b_(b) {}
  double predict(double q) const override;
  std::string formula() const override;
  std::string family() const override { return "power-law"; }
  double exponent() const { return a_; }
  double log_coeff() const { return b_; }

 private:
  double a_, b_;
};

/// T = exp(a + b Q)  (the paper's sigma_States model form).
class ExponentialModel final : public PerfModel {
 public:
  ExponentialModel(double a, double b) : a_(a), b_(b) {}
  double predict(double q) const override;
  std::string formula() const override;
  std::string family() const override { return "exponential"; }
  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_, b_;
};

/// Dense linear solve (Gaussian elimination, partial pivoting). Exposed
/// for tests; A is row-major n x n, overwritten. Throws on singularity.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b, std::size_t n);

/// Least-squares polynomial of `degree` through (q, t) points.
std::unique_ptr<PolynomialModel> fit_polynomial(const std::vector<Sample>& pts,
                                                int degree);
/// Power-law fit (requires q > 0, t > 0; such points only are used).
std::unique_ptr<PowerLawModel> fit_power_law(const std::vector<Sample>& pts);
/// Exponential fit (requires t > 0).
std::unique_ptr<ExponentialModel> fit_exponential(const std::vector<Sample>& pts);

/// Fits linear, quadratic, power-law and exponential candidates and
/// returns the one with the best adjusted R^2. `max_poly_degree` extends
/// the polynomial family (the paper's sigma_EFM uses a quartic).
std::unique_ptr<PerfModel> fit_best(const std::vector<Sample>& pts,
                                    int max_poly_degree = 2);

/// Computes and stores r2/adjusted_r2 on `model` for the given points.
void score_model(PerfModel& model, const std::vector<Sample>& pts, int nparams);

// ---------------------------------------------------------------------------
// Streaming fits (§5, online). The batch fitters above re-scan every stored
// sample; the streaming accumulators below maintain the least-squares
// sufficient statistics (running sums of Q^k, Q^k T, |Q|, T^2 — and their
// log/semi-log images for the Eq. 1-2 power-law/exponential forms) so each
// new invocation updates the fit in O(1) time and O(degree) space. fit()
// solves the same scaled normal equations as the batch path, so streaming
// coefficients match a batch re-fit up to floating-point noise (the
// property test pins 1e-9 relative).
// ---------------------------------------------------------------------------

/// Online least-squares polynomial of fixed degree.
class StreamingPolyFit {
 public:
  explicit StreamingPolyFit(int degree);
  void add(double q, double t);
  std::size_t count() const { return n_; }
  int degree() const { return degree_; }
  /// Same normal equations + mean-|Q| scaling as fit_polynomial; r2 and
  /// adjusted_r2 are computed from the sufficient statistics (clamped to
  /// [0, 1] against rounding).
  std::unique_ptr<PolynomialModel> fit() const;

  /// Residual sum of squares of the current least-squares fit, from the
  /// same sufficient statistics (matches a batch re-fit's SS_res to 1e-9
  /// relative — the property test pins it). O(degree^2), no sample re-scan.
  double residual_sum() const;
  /// residual_sum() / n: the per-sample residual variance a PatternModel
  /// leaf uses to weight uncertain fits (predict_interval).
  double mean_sq_residual() const;

 private:
  std::unique_ptr<PolynomialModel> fit_with_residual(double* ss_res_out) const;

  int degree_;
  std::size_t n_ = 0;
  std::vector<double> sum_pow_;    ///< sum q^k, k = 0..2d
  std::vector<double> sum_pow_t_;  ///< sum q^k t, k = 0..d
  double sum_abs_q_ = 0.0;
  double sum_t2_ = 0.0;
};

/// Online power law T = exp(a ln Q + b): a line fit in log-log space.
/// Points with q <= 0 or t <= 0 are skipped, as in fit_power_law. r2 is
/// scored in log space (the batch fitter scores in the original space,
/// which a streaming accumulator cannot reconstruct) — coefficients are
/// identical, the goodness-of-fit convention differs.
class StreamingPowerLawFit {
 public:
  StreamingPowerLawFit() : line_(1) {}
  void add(double q, double t);
  std::size_t count() const { return line_.count(); }
  std::unique_ptr<PowerLawModel> fit() const;

  /// Residual sum of squares in the fit's own (log-log) space, so leaves
  /// can weight fit confidence; matches a batch line fit through the same
  /// (ln Q, ln T) points to 1e-9 relative.
  double log_residual_sum() const { return line_.residual_sum(); }
  double mean_sq_log_residual() const { return line_.mean_sq_residual(); }

 private:
  StreamingPolyFit line_;
};

/// Online exponential T = exp(a + b Q): a line fit in semi-log space.
/// Points with t <= 0 are skipped; r2 scored in log space (see above).
class StreamingExpFit {
 public:
  StreamingExpFit() : line_(1) {}
  void add(double q, double t);
  std::size_t count() const { return line_.count(); }
  std::unique_ptr<ExponentialModel> fit() const;

  /// Residual sum of squares in semi-log space (see StreamingPowerLawFit).
  double log_residual_sum() const { return line_.residual_sum(); }
  double mean_sq_log_residual() const { return line_.mean_sq_residual(); }

 private:
  StreamingPolyFit line_;
};

/// The fit_best candidate family as one O(1)-per-sample accumulator:
/// polynomials of degree 1..max_poly_degree plus (when every sample is
/// positive, mirroring fit_best) power-law and exponential. best() picks
/// by adjusted R^2 among candidates with enough points.
class StreamingFitSet {
 public:
  explicit StreamingFitSet(int max_poly_degree = 2);
  void add(double q, double t);
  std::size_t count() const { return n_; }
  std::unique_ptr<PerfModel> best() const;

 private:
  std::vector<StreamingPolyFit> polys_;
  StreamingPowerLawFit power_;
  StreamingExpFit exp_;
  std::size_t n_ = 0;
  bool all_positive_ = true;
};

/// Convenience: mean-vs-Q and stddev-vs-Q models from raw samples, as the
/// paper builds for States/GodunovFlux/EFMFlux (Figs. 6-8).
struct MeanSigmaModels {
  std::vector<Bin> bins;
  std::unique_ptr<PerfModel> mean;
  std::unique_ptr<PerfModel> sigma;
};
MeanSigmaModels build_mean_sigma_models(const std::vector<Sample>& samples,
                                        int max_poly_degree = 4);

}  // namespace core
