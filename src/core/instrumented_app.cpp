#include "core/instrumented_app.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "core/trace_export.hpp"
#include "hwc/cache_sim.hpp"

namespace core {

void register_pmm_classes(cca::ComponentRepository& repo,
                          const components::AppConfig& cfg) {
  repo.register_class("TauMeasurement",
                      [] { return std::make_unique<TauMeasurementComponent>(); });
  repo.register_class("Mastermind",
                      [] { return std::make_unique<MastermindComponent>(); });
  repo.register_class("StatesProxy", [] { return std::make_unique<StatesProxy>(); });
  repo.register_class("AMRMeshProxy",
                      [] { return std::make_unique<AMRMeshProxy>(); });
  // The flux proxy's timer name tracks the implementation it fronts
  // (paper Fig. 3 shows g_proxy for GodunovFlux).
  const std::string key =
      cfg.flux_impl == "EFMFlux" ? "efm_proxy::compute()" : "g_proxy::compute()";
  repo.register_class("FluxProxy",
                      [key] { return std::make_unique<FluxProxy>(key); });
}

InstrumentedApp assemble_instrumented_app(mpp::Comm& world,
                                          const components::AppConfig& cfg) {
  auto repo = components::make_repository(world, cfg);
  register_pmm_classes(repo, cfg);

  InstrumentedApp app;
  app.framework = std::make_unique<cca::Framework>(std::move(repo));
  cca::Framework& fw = *app.framework;

  // Application components (same set as the plain assembly).
  fw.instantiate("driver", "ShockDriver");
  fw.instantiate("mesh", "AMRMesh");
  fw.instantiate("rk2", "RK2");
  fw.instantiate("invflux", "InviscidFlux");
  fw.instantiate("states", "States");
  fw.instantiate("flux", cfg.flux_impl);

  // PMM components, created last so they are destroyed first.
  fw.instantiate("tau", "TauMeasurement");
  fw.instantiate("mastermind", "Mastermind");
  fw.instantiate("sc_proxy", "StatesProxy");
  fw.instantiate("flux_proxy", "FluxProxy");
  fw.instantiate("icc_proxy", "AMRMeshProxy");

  app.tau = dynamic_cast<TauMeasurementComponent*>(&fw.component("tau"));
  app.mastermind = dynamic_cast<MastermindComponent*>(&fw.component("mastermind"));
  CCAPERF_REQUIRE(app.tau != nullptr && app.mastermind != nullptr,
                  "instrumented app: PMM component cast failed");

  // CCAPERF_HWC=perf points the PAPI-named registry sources at the real
  // PMU; default (sim) keeps the deterministic simulator counters. A
  // walled-off PMU degrades back to sim with a one-line notice — emitted
  // once per process, not once per rank thread, so multi-rank runs don't
  // repeat it.
  app.hwc_report = app.hwc_backend.install(app.registry().counters());
  if (app.hwc_report.degraded()) {
    static std::once_flag degrade_notice;
    std::call_once(degrade_notice, [&] {
      std::fprintf(stderr,
                   "ccaperf: CCAPERF_HWC=perf unavailable (%s); using sim\n",
                   app.hwc_report.detail.c_str());
    });
  }
  // The active backend rides along in every telemetry line's metadata so
  // downstream tooling knows which substrate produced the counter columns.
  app.mastermind->set_telemetry_hwc(
      app.hwc_report.active == hwc::HwcBackend::perf ? "perf" : "sim");

  // Measurement plumbing.
  fw.connect("mastermind", "measurement", "tau", "measurement");
  fw.connect("sc_proxy", "monitor", "mastermind", "monitor");
  fw.connect("flux_proxy", "monitor", "mastermind", "monitor");
  fw.connect("icc_proxy", "monitor", "mastermind", "monitor");

  // Proxies in front of their components.
  fw.connect("sc_proxy", "states_real", "states", "states");
  fw.connect("flux_proxy", "flux_real", "flux", "flux");
  fw.connect("icc_proxy", "mesh_real", "mesh", "mesh");

  // Application wiring, consumers pointed at the proxies.
  fw.connect("driver", "mesh", "icc_proxy", "mesh");
  fw.connect("driver", "integrator", "rk2", "integrator");
  fw.connect("rk2", "mesh", "icc_proxy", "mesh");
  fw.connect("rk2", "invflux", "invflux", "invflux");
  fw.connect("invflux", "states", "sc_proxy", "states");
  fw.connect("invflux", "flux", "flux_proxy", "flux");

  // CCAPERF_OVERHEAD_PCT arms the overhead governor: the Mastermind feeds
  // it windows of (wall, self-cost, records) and applies the returned
  // tier settings. The governor steers OBSERVABILITY only — a governed
  // run's physics output is byte-identical to an ungoverned one (the
  // governor-soak tier-1 stage pins this).
  const GovernorConfig gov_cfg = GovernorConfig::from_env();
  if (gov_cfg.enabled) {
    GovernorConfig per_rank = gov_cfg;
    // Decorrelate the 1-in-N sampling phases across ranks; the controller
    // itself stays deterministic per rank.
    per_rank.seed += static_cast<std::uint64_t>(world.rank());
    app.governor = std::make_unique<OverheadGovernor>(per_rank);
    app.mastermind->attach_governor(app.governor.get());
    app.mastermind->set_counter_stride_actuator(
        [](std::uint32_t stride) { hwc::set_governor_sample_stride(stride); });
  }

  // CCAPERF_REFIT=1 additionally arms the OnlineRefitter: at every regrid
  // boundary it re-fits the flux streaming models from the (possibly
  // sampled) records and hot-swaps the proxy's uses port when the
  // AssemblyOptimizer prefers the alternative kernel. This CHANGES THE
  // NUMERICS (EFM and Godunov fluxes differ), which is why the QoS
  // trade-off needs its own opt-in and is never implied by the
  // observability budget alone.
  const char* refit_env = std::getenv("CCAPERF_REFIT");
  if (refit_env != nullptr && *refit_env != '\0' &&
      std::string(refit_env) != "0") {
    const std::string flux_key = cfg.flux_impl == "EFMFlux"
                                     ? "efm_proxy::compute()"
                                     : "g_proxy::compute()";
    const std::string alt_impl =
        cfg.flux_impl == "EFMFlux" ? "GodunovFlux" : "EFMFlux";
    std::vector<OnlineRefitter::Candidate> candidates;
    candidates.push_back({"flux", cfg.flux_impl, 1.0});
    // The alternative kernel is instantiated lazily, on its first explore
    // swap; its lower accuracy score models the paper's §6 QoS trade-off.
    candidates.push_back({"flux_alt", alt_impl, 0.7});
    app.refitter = std::make_unique<OnlineRefitter>(
        fw, *app.mastermind, "flux_proxy", "flux_real", flux_key,
        std::move(candidates));
    app.mastermind->set_boundary_hook(
        "icc_proxy::regrid()",
        [r = app.refitter.get()] { r->on_boundary(); });
  }

  // CCAPERF_TRACE switches the rank's flight recorder on for the whole
  // assembled run; the caller collects and merges the buffers afterwards.
  const TraceEnv trace = trace_env();
  if (trace.enabled) {
    app.registry().set_trace_capacity(trace.capacity);
    app.registry().set_tracing(true);
    // Multi-threaded ranks: worker-lane shards record into their own
    // rings, epoch-aligned with the primary so the merged trace shows one
    // track per thread.
    app.tau->sync_shard_tracing();
  }
  return app;
}

}  // namespace core
