#pragma once
// core::run_session — scenario drivers for TelemetryHub sessions.
//
// A "session" is one complete instrumented application run publishing its
// telemetry through a SessionHandle instead of a private file: either the
// fig01 AMR shock/interface pipeline at some (ranks, threads, fault plan),
// or the minimal HPL-style dense-LU workload, both driven through the
// same proxy/MonitorPort/Mastermind stack. The drivers are deliberately
// env-free — rank thread counts come from set_rank_pool_threads(), fault
// plans from mpp::RunOptions, tracing from Registry::set_tracing() — so
// any number of sessions can run concurrently in one process without
// racing on process-global environment variables.
//
// Determinism contract: SessionResult::physics_digest is a pure function
// of the scenario (grid, steps, ranks, threads, fault plan, seed). The
// soak harness runs every scenario solo first, then concurrently under
// load, and requires the digests to match bit for bit — the hub and its
// neighbors must not perturb the physics.

#include <cstdint>
#include <string>

#include "core/telemetry_hub.hpp"

namespace core {

struct SessionScenario {
  std::string kind = "amr";  ///< "amr" or "lu"
  int ranks = 2;             ///< SCMD rank threads (amr)
  int threads = 1;           ///< worker lanes per rank (amr)
  std::string fault_plan;    ///< mpp::FaultSpec::parse syntax; "" = off
  std::uint64_t seed = 1;    ///< fault seed (amr) / matrix seed (lu)
  // AMR shape: tiny fig01 grids keep a 64-session soak tractable.
  int nx = 24, ny = 12;
  int steps = 3;
  // LU shape.
  int lu_n = 96;
  int lu_block = 24;
  int lu_reps = 2;
  // Telemetry/trace plumbing.
  std::uint64_t telemetry_interval = 8;  ///< records per JSONL line
  bool trace = false;                    ///< collect RankTraces into the handle
  std::size_t trace_events = 4096;

  /// Stable one-line description (test/bench labels).
  std::string describe() const;
};

struct SessionResult {
  std::uint64_t physics_digest = 0;  ///< deterministic per scenario
  std::uint64_t telemetry_lines = 0; ///< JSONL lines the masterminds emitted
  double wall_us = 0.0;
};

/// Runs the scenario, publishing telemetry through `handle` (one sink per
/// rank; lines tagged with the session name via set_telemetry_session).
/// Does not close the handle. Traces are registered on the handle when
/// `sc.trace` is set.
SessionResult run_session(SessionHandle& handle, const SessionScenario& sc);

}  // namespace core
