#include "core/telemetry_hub.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "support/error.hpp"
#include "support/json.hpp"

namespace core {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::size_t>(parsed);
}

double us_since(std::chrono::steady_clock::time_point from,
                std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Scrapes `"overhead_pct":<number>` out of a telemetry line. Returns
/// false when the line carries no such field (governor events, aggregate
/// lines, synthetic test payloads).
bool scrape_overhead_pct(const std::string& line, double* out) {
  static constexpr char kKey[] = "\"overhead_pct\":";
  const std::size_t at = line.find(kKey);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + sizeof(kKey) - 1;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// HubSinkBuf

void HubSinkBuf::accept(const char* s, std::size_t n) {
  std::size_t begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] != '\n') continue;
    pending_.append(s + begin, i - begin);
    hub_->publish(id_, incarnation_, std::move(pending_));
    pending_.clear();
    begin = i + 1;
  }
  pending_.append(s + begin, n - begin);
}

void HubSinkBuf::flush_tail() {
  if (pending_.empty()) return;
  hub_->publish(id_, incarnation_, std::move(pending_));
  pending_.clear();
}

HubSinkBuf::int_type HubSinkBuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
  const char c = traits_type::to_char_type(ch);
  accept(&c, 1);
  return ch;
}

std::streamsize HubSinkBuf::xsputn(const char* s, std::streamsize n) {
  accept(s, static_cast<std::size_t>(n));
  return n;
}

namespace {

/// ostream owning its HubSinkBuf. The buf is a *base* so it is constructed
/// before std::ostream sees it and destroyed after (flushing its tail).
class HubSinkStream : private HubSinkBuf, public std::ostream {
 public:
  HubSinkStream(TelemetryHub* hub, SessionId id, std::uint32_t incarnation)
      : HubSinkBuf(hub, id, incarnation),
        std::ostream(static_cast<HubSinkBuf*>(this)) {}
};

}  // namespace

// ---------------------------------------------------------------------------
// SessionHandle

SessionHandle& SessionHandle::operator=(SessionHandle&& o) noexcept {
  if (this == &o) return *this;
  close();
  // Handles are moved before concurrent sink use begins, so stealing the
  // sink list without o.sinks_mu_ is fine.
  hub_ = o.hub_;
  id_ = o.id_;
  incarnation_ = o.incarnation_;
  name_ = std::move(o.name_);
  scenario_ = std::move(o.scenario_);
  sinks_ = std::move(o.sinks_);
  o.hub_ = nullptr;
  o.id_ = kInvalidSession;
  return *this;
}

std::ostream& SessionHandle::sink() {
  std::lock_guard<std::mutex> lk(sinks_mu_);
  CCAPERF_REQUIRE(hub_ != nullptr, "SessionHandle::sink on a closed handle");
  if (sinks_.empty())
    sinks_.push_back(std::make_unique<HubSinkStream>(hub_, id_, incarnation_));
  return *sinks_.front();
}

std::ostream& SessionHandle::make_sink() {
  std::lock_guard<std::mutex> lk(sinks_mu_);
  CCAPERF_REQUIRE(hub_ != nullptr, "SessionHandle::make_sink on a closed handle");
  sinks_.push_back(std::make_unique<HubSinkStream>(hub_, id_, incarnation_));
  return *sinks_.back();
}

void SessionHandle::publish(std::string_view line) {
  CCAPERF_REQUIRE(hub_ != nullptr, "SessionHandle::publish on a closed handle");
  hub_->publish(id_, incarnation_, std::string(line));
}

void SessionHandle::add_trace(RankTrace trace) {
  CCAPERF_REQUIRE(hub_ != nullptr, "SessionHandle::add_trace on a closed handle");
  hub_->add_trace(id_, incarnation_, std::move(trace));
}

void SessionHandle::close() {
  if (hub_ == nullptr) return;
  {
    // Destroying the sink streams flushes any unterminated tails through
    // HubSinkBuf::~HubSinkBuf while the hub is still reachable.
    std::lock_guard<std::mutex> lk(sinks_mu_);
    sinks_.clear();
  }
  hub_->close_session(id_, incarnation_);
  hub_ = nullptr;
  id_ = kInvalidSession;
}

// ---------------------------------------------------------------------------
// TelemetryHub

TelemetryHub::Config TelemetryHub::Config::from_env() {
  Config c;
  c.shards = env_size("CCAPERF_HUB_SHARDS", c.shards);
  c.shard_capacity = env_size("CCAPERF_HUB_RING", c.shard_capacity);
  c.memory_budget_bytes =
      env_size("CCAPERF_HUB_MEM_KB", c.memory_budget_bytes >> 10) << 10;
  c.session_line_cap = env_size("CCAPERF_HUB_LINES", c.session_line_cap);
  c.drain_interval = std::chrono::microseconds(
      env_size("CCAPERF_HUB_DRAIN_US",
               static_cast<std::size_t>(c.drain_interval.count())));
  c.aggregate_interval = std::chrono::microseconds(
      env_size("CCAPERF_HUB_AGG_US",
               static_cast<std::size_t>(c.aggregate_interval.count())));
  return c;
}

TelemetryHub::TelemetryHub() : TelemetryHub(Config{}) {}

TelemetryHub::TelemetryHub(Config cfg) : cfg_(cfg) {
  CCAPERF_REQUIRE(cfg_.shards > 0, "TelemetryHub: zero shards");
  CCAPERF_REQUIRE(cfg_.shard_capacity > 0, "TelemetryHub: zero shard capacity");
  cfg_.shards = round_up_pow2(cfg_.shards);
  shard_mask_ = cfg_.shards - 1;
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  agg_epoch_ = agg_last_ = agg_due_ = std::chrono::steady_clock::now();
  drainer_ = std::make_unique<ccaperf::ServiceThread>(
      "hub-drainer", cfg_.drain_interval, [this] { drain_cycle(); });
}

TelemetryHub::~TelemetryHub() {
  drainer_->stop();  // final drain runs on this thread
  std::lock_guard<std::mutex> lk(state_mu_);
  if (aggregate_sink_ != nullptr) emit_aggregate_unlocked(*aggregate_sink_);
}

SessionHandle TelemetryHub::open_session(std::string name, std::string scenario,
                                         std::string fault_plan) {
  CCAPERF_REQUIRE(!name.empty(), "TelemetryHub: empty session name");
  std::lock_guard<std::mutex> lk(state_mu_);
  const SessionId id = names_.intern(name);
  if (id == sessions_.size()) sessions_.emplace_back();
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: interner out of sync");
  Session& s = sessions_[id];
  CCAPERF_REQUIRE(!s.open, "TelemetryHub: session name already open");
  // Reopening a name reuses its dense id under a fresh incarnation; the
  // previous life's retained stream and accounting are released.
  bytes_retained_ -= s.bytes;
  const std::uint32_t incarnation = s.incarnation + 1;
  s = Session{};
  s.name = name;
  s.scenario = std::move(scenario);
  s.fault_plan = std::move(fault_plan);
  s.incarnation = incarnation;
  s.open = true;
  ++sessions_opened_;
  return SessionHandle(this, id, incarnation, std::move(name), s.scenario);
}

void TelemetryHub::set_aggregate_sink(std::ostream* os) {
  std::lock_guard<std::mutex> lk(state_mu_);
  aggregate_sink_ = os;
}

void TelemetryHub::publish(SessionId id, std::uint32_t incarnation,
                           std::string line) {
  Shard& sh = shard_for(id);
  bool nudge = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    if (sh.ring.empty()) sh.ring.resize(cfg_.shard_capacity);
    auto& tally = sh.tally[{id, incarnation}];
    if (sh.count == sh.ring.size()) {
      // Backpressure: reject the new line, never stall the producer.
      ++tally.dropped;
      dropped_ring_.fetch_add(1, std::memory_order_relaxed);
      nudge = true;
    } else {
      ShardItem& it = sh.ring[(sh.head + sh.count) % sh.ring.size()];
      it.session = id;
      it.incarnation = incarnation;
      it.text = std::move(line);
      ++sh.count;
      ++tally.accepted;
      published_.fetch_add(1, std::memory_order_relaxed);
      nudge = sh.count * 2 >= sh.ring.size();  // high-water mark
    }
  }
  if (nudge && drainer_ != nullptr) drainer_->wake();
}

void TelemetryHub::add_trace(SessionId id, std::uint32_t incarnation,
                             RankTrace trace) {
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  Session& s = sessions_[id];
  if (s.incarnation != incarnation) return;  // stale life, discard
  s.traces.push_back(std::move(trace));
}

void TelemetryHub::close_session(SessionId id, std::uint32_t incarnation) {
  // Drain first so everything the session published is folded into its
  // retained stream and accounting before the session reads as closed.
  drain_now();
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  Session& s = sessions_[id];
  if (s.incarnation != incarnation || !s.open) return;
  s.open = false;
  ++sessions_closed_;
}

void TelemetryHub::drain_now() { drain_cycle(); }

void TelemetryHub::drain_cycle() {
  std::lock_guard<std::mutex> drain_lk(drain_mu_);
  drain_shards_locked();
  // Aggregate cadence: 0 means every drain cycle.
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(state_mu_);
  ++drain_ticks_;
  if (aggregate_sink_ != nullptr &&
      (cfg_.aggregate_interval.count() == 0 || now >= agg_due_)) {
    emit_aggregate_unlocked(*aggregate_sink_);
    agg_due_ = now + cfg_.aggregate_interval;
  }
}

void TelemetryHub::drain_shards_locked() {
  // Phase 1: lift items and tallies out of every shard under only that
  // shard's mutex, preserving per-shard FIFO order (= per-session order,
  // since a session maps to exactly one shard).
  std::vector<ShardItem> items;
  std::vector<std::pair<SessionKey, ShardTally>> tallies;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    for (std::size_t i = 0; i < sh.count; ++i)
      items.push_back(std::move(sh.ring[(sh.head + i) % sh.ring.size()]));
    sh.head = sh.count = 0;
    for (auto& kv : sh.tally) tallies.emplace_back(kv.first, kv.second);
    sh.tally.clear();
  }

  // Phase 2: fold into retained state under state_mu_.
  std::lock_guard<std::mutex> lk(state_mu_);
  for (auto& [key, tally] : tallies) {
    const auto [id, incarnation] = key;
    if (id >= sessions_.size()) continue;
    Session& s = sessions_[id];
    if (s.incarnation != incarnation) continue;  // a dead life's tallies
    s.published += tally.accepted;
    s.dropped_ring += tally.dropped;
  }
  for (ShardItem& it : items) {
    if (it.session >= sessions_.size()) continue;
    Session& s = sessions_[it.session];
    if (s.incarnation != it.incarnation) continue;  // stale, never misfiled
    double pct = 0.0;
    if (scrape_overhead_pct(it.text, &pct)) {
      s.agg_overhead_sum += pct;
      ++s.agg_overhead_n;
    }
    bytes_retained_ += it.text.size();
    s.bytes += it.text.size();
    s.lines.push_back(SessionLine{next_seq_++, std::move(it.text)});
    ++s.drained;
    ++drained_total_;
  }
  enforce_bounds_unlocked();
  bytes_peak_ = std::max(bytes_peak_, bytes_retained_);
}

void TelemetryHub::evict_front_unlocked(Session& s) {
  const std::uint64_t sz = s.lines.front().text.size();
  s.lines.pop_front();
  s.bytes -= sz;
  bytes_retained_ -= sz;
  ++s.dropped_evicted;
  ++dropped_evicted_total_;
}

void TelemetryHub::enforce_bounds_unlocked() {
  // Per-session line cap: a chatty session sheds its own oldest lines.
  for (Session& s : sessions_)
    while (s.lines.size() > cfg_.session_line_cap) evict_front_unlocked(s);
  // Hub-wide byte budget: evict the globally oldest retained line until
  // under budget. O(sessions) scan per eviction — sessions are dozens to
  // hundreds, evictions amortize against the lines they free.
  while (bytes_retained_ > cfg_.memory_budget_bytes) {
    Session* oldest = nullptr;
    for (Session& s : sessions_) {
      if (s.lines.empty()) continue;
      if (oldest == nullptr || s.lines.front().seq < oldest->lines.front().seq)
        oldest = &s;
    }
    if (oldest == nullptr) break;  // budget smaller than nothing retained
    evict_front_unlocked(*oldest);
  }
}

std::vector<SessionLine> TelemetryHub::session_lines(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  const Session& s = sessions_[id];
  return std::vector<SessionLine>(s.lines.begin(), s.lines.end());
}

std::string TelemetryHub::session_text(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  const Session& s = sessions_[id];
  std::string out;
  out.reserve(s.bytes + s.lines.size());
  for (const SessionLine& l : s.lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

SessionStats TelemetryHub::session_stats(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  const Session& s = sessions_[id];
  SessionStats st;
  st.published = s.published;
  st.drained = s.drained;
  st.dropped_ring = s.dropped_ring;
  st.dropped_evicted = s.dropped_evicted;
  st.retained = s.lines.size();
  st.retained_bytes = s.bytes;
  st.open = s.open;
  return st;
}

SessionId TelemetryHub::find_session(std::string_view name) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  const std::uint32_t id = names_.find(name);
  return id == tau::NameInterner::kNotFound ? kInvalidSession : id;
}

std::string TelemetryHub::session_fault_plan(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
  return sessions_[id].fault_plan;
}

MergeStats TelemetryHub::export_session_trace(SessionId id,
                                              std::ostream& os) const {
  TraceMerger merger;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    CCAPERF_REQUIRE(id < sessions_.size(), "TelemetryHub: unknown session");
    for (const RankTrace& t : sessions_[id].traces) merger.add_rank(t);
  }
  return merger.write_chrome_trace(os);
}

HubStats TelemetryHub::stats() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  HubStats h;
  h.sessions_opened = sessions_opened_;
  h.sessions_closed = sessions_closed_;
  h.sessions_open = sessions_opened_ - sessions_closed_;
  h.published = published_.load(std::memory_order_relaxed);
  h.drained = drained_total_;
  h.dropped_ring = dropped_ring_.load(std::memory_order_relaxed);
  h.dropped_evicted = dropped_evicted_total_;
  h.bytes_retained = bytes_retained_;
  h.bytes_peak = bytes_peak_;
  h.drain_ticks = drain_ticks_;
  h.aggregate_lines = aggregate_lines_;
  return h;
}

void TelemetryHub::emit_aggregate(std::ostream& os) {
  std::lock_guard<std::mutex> lk(state_mu_);
  emit_aggregate_unlocked(os);
}

void TelemetryHub::emit_aggregate_unlocked(std::ostream& os) {
  const auto now = std::chrono::steady_clock::now();
  const double dt_us = us_since(agg_last_, now);
  const double dt_s = dt_us > 0.0 ? dt_us * 1e-6 : 0.0;
  const std::uint64_t d_rows = drained_total_ - agg_last_drained_;
  const std::uint64_t d_opened = sessions_opened_ - agg_last_opened_;

  os << "{\"t_us\":" << ccaperf::json_number(us_since(agg_epoch_, now), 1)
     << ",\"sessions_open\":" << (sessions_opened_ - sessions_closed_)
     << ",\"sessions_opened\":" << sessions_opened_
     << ",\"sessions_closed\":" << sessions_closed_
     << ",\"sessions_per_s\":"
     << ccaperf::json_number(dt_s > 0.0 ? d_opened / dt_s : 0.0, 3)
     << ",\"rows_per_s\":"
     << ccaperf::json_number(dt_s > 0.0 ? d_rows / dt_s : 0.0, 3)
     << ",\"published\":" << published_.load(std::memory_order_relaxed)
     << ",\"drained\":" << drained_total_
     << ",\"dropped_ring\":" << dropped_ring_.load(std::memory_order_relaxed)
     << ",\"dropped_evicted\":" << dropped_evicted_total_
     << ",\"bytes_retained\":" << bytes_retained_
     << ",\"bytes_peak\":" << bytes_peak_ << ",\"drain_ticks\":" << drain_ticks_;

  // Per-scenario breakdown: open-session counts and the overhead_pct
  // scraped from the sessions' own lines since the previous aggregate.
  struct ScenarioAgg {
    std::uint64_t sessions = 0;
    double overhead_sum = 0.0;
    std::uint64_t overhead_n = 0;
  };
  std::map<std::string, ScenarioAgg> by_scenario;
  for (Session& s : sessions_) {
    if (s.scenario.empty()) continue;
    ScenarioAgg& a = by_scenario[s.scenario];
    if (s.open) ++a.sessions;
    a.overhead_sum += s.agg_overhead_sum;
    a.overhead_n += s.agg_overhead_n;
    s.agg_overhead_sum = 0.0;
    s.agg_overhead_n = 0;
  }
  os << ",\"scenarios\":{";
  bool first = true;
  for (const auto& [scenario, a] : by_scenario) {
    if (!first) os << ",";
    first = false;
    os << "\"" << ccaperf::json_escape(scenario) << "\":{\"sessions\":"
       << a.sessions << ",\"overhead_lines\":" << a.overhead_n
       << ",\"overhead_pct_mean\":"
       << ccaperf::json_number(
              a.overhead_n > 0 ? a.overhead_sum / a.overhead_n : 0.0, 3)
       << "}";
  }
  os << "}}\n";
  os.flush();

  ++aggregate_lines_;
  agg_last_ = now;
  agg_last_drained_ = drained_total_;
  agg_last_opened_ = sessions_opened_;
}

}  // namespace core
