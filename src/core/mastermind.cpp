#include "core/mastermind.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "support/table.hpp"

namespace core {

void Record::dump_csv(std::ostream& os) const {
  // Stable column set: union of parameter / counter names.
  std::set<std::string> param_names;
  std::set<std::string> counter_names;
  for (const Invocation& inv : invocations_) {
    for (const auto& [k, v] : inv.params) param_names.insert(k);
    for (const auto& [k, v] : inv.counters) counter_names.insert(k);
  }
  ccaperf::CsvWriter csv(os);
  std::vector<std::string> header{"method", "wall_us", "mpi_us", "compute_us"};
  for (const auto& p : param_names) header.push_back("param:" + p);
  for (const auto& c : counter_names) header.push_back("hw:" + c);
  csv.row(header);
  for (const Invocation& inv : invocations_) {
    std::vector<std::string> row{method_, ccaperf::fmt_double(inv.wall_us, 10),
                                 ccaperf::fmt_double(inv.mpi_us, 10),
                                 ccaperf::fmt_double(inv.compute_us, 10)};
    for (const auto& p : param_names) {
      auto it = inv.params.find(p);
      row.push_back(it == inv.params.end() ? "" : ccaperf::fmt_double(it->second, 10));
    }
    for (const auto& cn : counter_names) {
      auto it = std::find_if(inv.counters.begin(), inv.counters.end(),
                             [&](const auto& kv) { return kv.first == cn; });
      row.push_back(it == inv.counters.end() ? ""
                                             : ccaperf::fmt_double(it->second, 10));
    }
    csv.row(row);
  }
}

std::vector<std::pair<double, double>> Record::samples(const std::string& param,
                                                       Metric metric) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(invocations_.size());
  for (const Invocation& inv : invocations_) {
    auto it = inv.params.find(param);
    if (it == inv.params.end()) continue;
    const double t = metric == Metric::wall      ? inv.wall_us
                     : metric == Metric::compute ? inv.compute_us
                                                 : inv.mpi_us;
    out.emplace_back(it->second, t);
  }
  return out;
}

tau::Registry& MastermindComponent::registry() {
  return svc_->get_port_as<MeasurementPort>("measurement")->registry();
}

void MastermindComponent::start(const std::string& method_key, const ParamMap& params) {
  tau::Registry& reg = registry();
  Open open;
  open.key = method_key;
  open.params = params;
  // Parameter extraction and snapshots happen OUTSIDE the method timer, so
  // "these timings do not include the cost of the work done in the
  // proxies" (§5).
  open.mpi_us_start = reg.group_inclusive_us(tau::kMpiGroup);
  open.counters_start = reg.counters().read_all();
  // Call-path detection: the enclosing monitored method (if any) is the
  // caller of this invocation.
  count_edge(open_.empty() ? std::string{} : open_.back().key, method_key);
  open_.push_back(std::move(open));
  reg.start(reg.timer(method_key, "PROXY"));
  open_.back().wall_start = tau::Clock::now();
}

void MastermindComponent::stop(const std::string& method_key) {
  const tau::Clock::time_point wall_end = tau::Clock::now();
  tau::Registry& reg = registry();
  reg.stop(reg.timer(method_key, "PROXY"));

  CCAPERF_REQUIRE(!open_.empty() && open_.back().key == method_key,
                  "Mastermind::stop: mismatched monitoring stop for '" +
                      method_key + "'");
  Open open = std::move(open_.back());
  open_.pop_back();

  Invocation inv;
  inv.params = std::move(open.params);
  inv.wall_us =
      std::chrono::duration<double, std::micro>(wall_end - open.wall_start).count();
  inv.mpi_us = reg.group_inclusive_us(tau::kMpiGroup) - open.mpi_us_start;
  inv.compute_us = inv.wall_us - inv.mpi_us;
  const auto counters_end = reg.counters().read_all();
  for (const auto& [name, value] : counters_end) {
    auto it = std::find_if(open.counters_start.begin(), open.counters_start.end(),
                           [&](const auto& kv) { return kv.first == name; });
    const double before =
        it == open.counters_start.end() ? 0.0 : static_cast<double>(it->second);
    inv.counters.emplace_back(name, static_cast<double>(value) - before);
  }

  for (auto& [key, rec] : records_) {
    if (key == method_key) {
      rec.add(std::move(inv));
      return;
    }
  }
  records_.emplace_back(method_key, Record(method_key));
  records_.back().second.add(std::move(inv));
}

void MastermindComponent::count_edge(const std::string& caller,
                                     const std::string& callee) {
  for (CallEdge& e : edges_) {
    if (e.caller == caller && e.callee == callee) {
      ++e.count;
      return;
    }
  }
  edges_.push_back(CallEdge{caller, callee, 1});
}

std::uint64_t MastermindComponent::call_count(const std::string& caller,
                                              const std::string& callee) const {
  for (const CallEdge& e : edges_)
    if (e.caller == caller && e.callee == callee) return e.count;
  return 0;
}

const Record* MastermindComponent::record(const std::string& method_key) const {
  for (const auto& [key, rec] : records_)
    if (key == method_key) return &rec;
  return nullptr;
}

std::vector<std::string> MastermindComponent::method_keys() const {
  std::vector<std::string> keys;
  keys.reserve(records_.size());
  for (const auto& [key, rec] : records_) keys.push_back(key);
  return keys;
}

void MastermindComponent::dump_all(const std::string& dir, int rank) const {
  std::filesystem::create_directories(dir);
  for (const auto& [key, rec] : records_) {
    std::string name = key;
    for (char& ch : name)
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    std::ofstream os(dir + "/" + name + ".rank" + std::to_string(rank) + ".csv");
    rec.dump_csv(os);
  }
}

MastermindComponent::~MastermindComponent() {
  if (dump_dir_) dump_all(*dump_dir_, dump_rank_);
}

}  // namespace core
