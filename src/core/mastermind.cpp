#include "core/mastermind.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>

#include "support/json.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double us_between(tau::Clock::time_point a, tau::Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
}

// --- Record: columns ---------------------------------------------------------

const Record::NamedColumn* Record::find_param(std::string_view name) const {
  for (const NamedColumn& c : params_)
    if (c.name == name) return &c;
  return nullptr;
}

const Record::NamedColumn* Record::find_counter(std::string_view name) const {
  for (const NamedColumn& c : counters_)
    if (c.name == name) return &c;
  return nullptr;
}

std::vector<std::string> Record::param_names() const {
  std::vector<std::string> out;
  out.reserve(params_.size());
  for (const NamedColumn& c : params_) out.push_back(c.name);
  return out;
}

std::vector<std::string> Record::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const NamedColumn& c : counters_) out.push_back(c.name);
  return out;
}

std::size_t Record::ensure_param_column(std::string_view name) {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name == name) return i;
  params_.push_back(NamedColumn{std::string(name), {}});
  params_.back().data.pad_to(completed_rows(), kNaN);
  return params_.size() - 1;
}

std::size_t Record::ensure_counter_column(std::string_view name) {
  for (std::size_t i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == name) return i;
  counters_.push_back(NamedColumn{std::string(name), {}});
  counters_.back().data.pad_to(completed_rows(), kNaN);
  return counters_.size() - 1;
}

double Record::param_at(std::size_t i, std::string_view name) const {
  const NamedColumn* c = find_param(name);
  return (c != nullptr && i < c->data.size()) ? c->data[i] : kNaN;
}

double Record::counter_at(std::size_t i, std::string_view name) const {
  const NamedColumn* c = find_counter(name);
  return (c != nullptr && i < c->data.size()) ? c->data[i] : kNaN;
}

double Record::metric_at(std::size_t i, Metric m) const {
  return m == Metric::wall ? wall_[i] : m == Metric::compute ? compute_[i] : mpi_[i];
}

// --- Record: appending -------------------------------------------------------

void Record::add_times(double wall_us, double mpi_us, double compute_us) {
  wall_.push_back(wall_us);
  mpi_.push_back(mpi_us);
  compute_.push_back(compute_us);
  in_row_ = true;
}

void Record::set_param(std::size_t column, double value) {
  params_[column].data.push_back(value);
}

void Record::set_counter(std::size_t column, double value) {
  counters_[column].data.push_back(value);
}

void Record::finish_row() {
  const std::size_t n = count();
  for (NamedColumn& c : params_) c.data.pad_to(n, kNaN);
  for (NamedColumn& c : counters_) c.data.pad_to(n, kNaN);
  in_row_ = false;
  const std::size_t row = n - 1;
  for (Stream& s : streams_) {
    const double q = params_[s.param_col].data[row];
    if (!std::isnan(q)) s.fit->add(q, metric_at(row, s.metric));
  }
}

void Record::add(const Invocation& inv) {
  // Resolve columns before opening the row so backfill targets completed
  // rows only.
  std::vector<std::pair<std::size_t, double>> pcols, ccols;
  pcols.reserve(inv.params.size());
  ccols.reserve(inv.counters.size());
  for (const auto& [name, v] : inv.params) pcols.emplace_back(ensure_param_column(name), v);
  for (const auto& [name, v] : inv.counters)
    ccols.emplace_back(ensure_counter_column(name), v);
  add_times(inv.wall_us, inv.mpi_us, inv.compute_us);
  for (const auto& [col, v] : pcols) set_param(col, v);
  for (const auto& [col, v] : ccols) set_counter(col, v);
  finish_row();
}

// --- Record: consumption -----------------------------------------------------

void Record::dump_csv(std::ostream& os) const {
  // Stable column set: sorted union of parameter / counter names (the
  // pre-columnar dump used std::set ordering).
  std::vector<std::string> pnames = param_names();
  std::vector<std::string> cnames = counter_names();
  std::sort(pnames.begin(), pnames.end());
  std::sort(cnames.begin(), cnames.end());

  ccaperf::CsvWriter csv(os);
  std::vector<std::string> header{"method", "wall_us", "mpi_us", "compute_us"};
  for (const auto& p : pnames) header.push_back("param:" + p);
  for (const auto& c : cnames) header.push_back("hw:" + c);
  csv.row(header);

  std::vector<const NamedColumn*> pcols, ccols;
  for (const auto& p : pnames) pcols.push_back(find_param(p));
  for (const auto& c : cnames) ccols.push_back(find_counter(c));

  std::vector<std::string> row;
  for (std::size_t i = 0; i < count(); ++i) {
    row.assign({method_, ccaperf::fmt_double(wall_[i], 10),
                ccaperf::fmt_double(mpi_[i], 10), ccaperf::fmt_double(compute_[i], 10)});
    for (const NamedColumn* c : pcols) {
      const double v = c->data[i];
      row.push_back(std::isnan(v) ? "" : ccaperf::fmt_double(v, 10));
    }
    for (const NamedColumn* c : ccols) {
      const double v = c->data[i];
      row.push_back(std::isnan(v) ? "" : ccaperf::fmt_double(v, 10));
    }
    csv.row(row);
  }
}

std::vector<std::pair<double, double>> Record::samples(const std::string& param,
                                                       Metric metric) const {
  std::vector<std::pair<double, double>> out;
  const NamedColumn* p = find_param(param);
  if (p == nullptr) return out;
  out.reserve(count());
  for (std::size_t i = 0; i < count(); ++i) {
    const double q = p->data[i];
    if (std::isnan(q)) continue;
    out.emplace_back(q, metric_at(i, metric));
  }
  return out;
}

std::vector<std::pair<double, double>> Record::samples(
    const std::string& param, const std::string& metric_source) const {
  if (metric_source == "wall") return samples(param, Metric::wall);
  if (metric_source == "compute") return samples(param, Metric::compute);
  if (metric_source == "mpi") return samples(param, Metric::mpi);
  std::vector<std::pair<double, double>> out;
  const NamedColumn* p = find_param(param);
  const NamedColumn* c = find_counter(metric_source);
  if (p == nullptr || c == nullptr) return out;
  out.reserve(count());
  for (std::size_t i = 0; i < count(); ++i) {
    const double q = p->data[i];
    const double v = c->data[i];
    if (std::isnan(q) || std::isnan(v)) continue;
    out.emplace_back(q, v);
  }
  return out;
}

StreamingFitSet& Record::attach_stream(const std::string& param, Metric metric,
                                       int max_poly_degree) {
  Stream s;
  s.param_col = ensure_param_column(param);
  s.metric = metric;
  s.fit = std::make_unique<StreamingFitSet>(max_poly_degree);
  // Backfill completed rows so the stream always reflects the whole record.
  const ChunkedColumn& qcol = params_[s.param_col].data;
  for (std::size_t i = 0; i < count(); ++i)
    if (!std::isnan(qcol[i])) s.fit->add(qcol[i], metric_at(i, metric));
  streams_.push_back(std::move(s));
  return *streams_.back().fit;
}

const std::vector<Invocation>& Record::invocations() const {
  for (std::size_t i = rows_cache_.size(); i < count(); ++i) {
    Invocation inv;
    inv.wall_us = wall_[i];
    inv.mpi_us = mpi_[i];
    inv.compute_us = compute_[i];
    for (const NamedColumn& c : params_)
      if (!std::isnan(c.data[i])) inv.params[c.name] = c.data[i];
    for (const NamedColumn& c : counters_)
      if (!std::isnan(c.data[i])) inv.counters.emplace_back(c.name, c.data[i]);
    rows_cache_.push_back(std::move(inv));
  }
  return rows_cache_;
}

// --- MastermindComponent -----------------------------------------------------

tau::Registry& MastermindComponent::registry() {
  if (resolved_.load(std::memory_order_acquire)) return *reg_;
  return resolve_measurement();
}

tau::Registry& MastermindComponent::resolve_measurement() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!resolved_.load(std::memory_order_relaxed)) {
    MeasurementPort* port = svc_->get_port_as<MeasurementPort>("measurement");
    reg_ = &port->registry();
    mpi_group_ = reg_->group_id(tau::kMpiGroup);
    // Threading (DESIGN.md §9): when the measurement provider exposes
    // per-lane registry shards, worker pool lanes time into their own
    // shard; the rank thread (lane 0) keeps the primary registry, so with
    // one lane every path below is byte-identical to the serial build.
    shards_ = port->shards();
    const int lanes = shards_ != nullptr ? shards_->lanes() : 1;
    threaded_ = lanes > 1;
    lanes_.resize(static_cast<std::size_t>(lanes));
    for (Method& m : methods_) init_method_lane_state(m);
    resolved_.store(true, std::memory_order_release);
  }
  return *reg_;
}

void MastermindComponent::init_method_lane_state(Method& m) {
  const std::size_t n = lanes_.size();
  m.lane_timer.assign(n, 0);
  m.lane_timer_ok.assign(n, 0);
  m.lane_arg_string.assign(n, 0);
  m.lane_arg_ok.assign(n, 0);
  // The per-row lane id is only materialized for threaded ranks, so
  // single-threaded CSVs keep their exact pre-threading column set.
  if (threaded_) m.thread_col = m.record->ensure_param_column("thread");
}

MastermindComponent::Method& MastermindComponent::method_ref(MethodHandle h) {
  // Deque references are stable under push_back, but the deque's internal
  // block map is not: when other lanes may intern concurrently, take the
  // lock for the lookup itself (the returned reference stays valid).
  if (!threaded_) return methods_[h];
  std::lock_guard<std::mutex> lk(mu_);
  return methods_[h];
}

MethodHandle MastermindComponent::intern_method(std::string_view key) {
  if (threaded_) {
    std::lock_guard<std::mutex> lk(mu_);
    return intern_method_unlocked(key);
  }
  return intern_method_unlocked(key);
}

MethodHandle MastermindComponent::intern_method_unlocked(std::string_view key) {
  const std::size_t n = methods_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i)
    if (methods_[i].key == key) return static_cast<MethodHandle>(i);
  Method m;
  m.key = std::string(key);
  m.record = std::make_unique<Record>(m.key);
  methods_.push_back(std::move(m));
  init_method_lane_state(methods_.back());
  methods_count_.store(methods_.size(), std::memory_order_release);
  return static_cast<MethodHandle>(methods_.size() - 1);
}

MethodHandle MastermindComponent::register_method(
    const std::string& method_key, const std::vector<std::string>& param_names) {
  CCAPERF_REQUIRE(param_names.size() <= kMaxMethodParams,
                  "Mastermind::register_method: too many parameters for '" +
                      method_key + "'");
  const MethodHandle h = intern_method(method_key);
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  Method& m = methods_[h];
  if (m.param_names.empty() && !param_names.empty()) {
    m.param_names = param_names;
    m.param_cols.clear();
    for (const std::string& n : param_names)
      m.param_cols.push_back(m.record->ensure_param_column(n));
  } else {
    CCAPERF_REQUIRE(param_names.empty() || param_names == m.param_names,
                    "Mastermind::register_method: conflicting parameter names for '" +
                        method_key + "'");
  }
  return h;
}

MastermindComponent::Open& MastermindComponent::push_open(LaneState& lane,
                                                          MethodHandle h) {
  if (lane.depth == lane.open.size()) lane.open.emplace_back();
  Open& o = lane.open[lane.depth++];
  o.method = h;
  o.n_params = 0;
  o.extra_params.clear();  // keeps capacity: steady state allocates nothing
  return o;
}

void MastermindComponent::start(MethodHandle method, ParamSpan params) {
  const int lane = ccaperf::ThreadPool::current_lane();
  if (lane != 0) {
    start_on_lane(method, params, nullptr, lane);
    return;
  }
  // Self-overhead clock reads only when telemetry or the governor wants
  // the accounting: the bare monitoring fast path must not pay for them.
  const bool acct = telem_sink_ != nullptr || gov_ != nullptr;
  const tau::Clock::time_point t0 = acct ? tau::Clock::now() : tau::Clock::time_point{};
  tau::Registry& reg = registry();
  CCAPERF_REQUIRE(method < methods_count_.load(std::memory_order_acquire),
                  "Mastermind::start: bad method handle");
  Method& m = method_ref(method);
  CCAPERF_REQUIRE(params.size == m.param_names.size(),
                  "Mastermind::start: wrong parameter count for '" + m.key + "'");
  LaneState& L = lanes_[0];
  Open& o = push_open(L, method);
  o.n_params = static_cast<std::uint32_t>(params.size);
  for (std::size_t i = 0; i < params.size; ++i) o.param_vals[i] = params.data[i];
  // Call-path detection: the enclosing monitored method (if any) is the
  // caller of this invocation.
  const MethodHandle caller =
      L.depth >= 2 ? L.open[L.depth - 2].method : kInvalidMethodHandle;
  if (threaded_) {
    std::lock_guard<std::mutex> lk(mu_);
    count_edge(caller, method);
    o.sampled = sample_decision(++m.calls_seen);
  } else {
    count_edge(caller, method);
    o.sampled = sample_decision(++m.calls_seen);
  }
  // Parameter capture and snapshots happen OUTSIDE the method timer, so
  // "these timings do not include the cost of the work done in the
  // proxies" (§5). Unsampled activations skip the snapshots entirely —
  // that's most of what monitor sampling saves.
  if (o.sampled) {
    o.mpi_us_start = reg.group_inclusive_us(mpi_group_);
    reg.counters().read_values(o.counters_start);
    o.gen_start = reg.generation();
  }
  if (!m.timer_resolved) {
    m.timer = reg.timer(m.key, "PROXY");
    m.timer_resolved = true;
  }
  reg.start(m.timer);
  if (reg.tracing() && params.size > 0) {
    // The method's trace slice carries its first parameter (e.g. Q) as a
    // Perfetto slice argument.
    if (!m.arg_string_resolved) {
      m.arg_string = reg.trace_string(m.param_names[0]);
      m.arg_string_resolved = true;
    }
    reg.trace_arg(m.arg_string, params.data[0]);
  }
  if (acct) telem_self_us_ += us_between(t0, tau::Clock::now());
}

void MastermindComponent::stop(MethodHandle method) {
  const int lane = ccaperf::ThreadPool::current_lane();
  if (lane != 0) {
    stop_on_lane(method, lane);
    return;
  }
  const bool acct = telem_sink_ != nullptr || gov_ != nullptr;
  const tau::Clock::time_point t0 = acct ? tau::Clock::now() : tau::Clock::time_point{};
  tau::Registry& reg = registry();
  CCAPERF_REQUIRE(method < methods_count_.load(std::memory_order_acquire),
                  "Mastermind::stop: bad method handle");
  Method& m = method_ref(method);
  // The method timer's own activation is the invocation wall time — no
  // extra clock readings beyond the two the registry already takes.
  const double wall_us = m.timer_resolved ? reg.stop(m.timer) : 0.0;
  LaneState& L = lanes_[0];
  CCAPERF_REQUIRE(L.depth > 0 && L.open[L.depth - 1].method == method,
                  "Mastermind::stop: mismatched monitoring stop for '" + m.key + "'");
  Open& o = L.open[--L.depth];

  // Record append through telemetry shares the columns with worker-lane
  // rows, so the whole tail is one critical section on threaded ranks
  // (and lock-free when single-threaded).
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  if (o.sampled) {
    Record& rec = *m.record;
    const double mpi_us = reg.group_inclusive_us(mpi_group_) - o.mpi_us_start;
    rec.add_times(wall_us, mpi_us, wall_us - mpi_us);
    for (std::size_t i = 0; i < o.n_params; ++i)
      rec.set_param(m.param_cols[i], o.param_vals[i]);
    for (const auto& [col, v] : o.extra_params) rec.set_param(col, v);
    if (threaded_) rec.set_param(m.thread_col, 0.0);

    reg.counters().read_values(counters_scratch_);
    if (counters_scratch_.size() != m.counter_cols.size()) refresh_counter_columns(m);
    for (std::size_t i = 0; i < counters_scratch_.size(); ++i) {
      // A counter registered mid-invocation has no before-value: treat as 0.
      const double before =
          i < o.counters_start.size() ? static_cast<double>(o.counters_start[i]) : 0.0;
      rec.set_counter(m.counter_cols[i], static_cast<double>(counters_scratch_[i]) - before);
    }
    rec.finish_row();
    ++m.calls_recorded;
  }

  // Outermost window closed: nothing differences older generations any
  // more, so the registry's change log can be compacted — but no further
  // than the telemetry low-water mark, whose next snapshot_delta still
  // needs the entries since its last line.
  if (L.depth == 0)
    reg.retire_generations_before(telem_sink_ != nullptr
                                      ? std::min(reg.generation(), telem_gen_)
                                      : reg.generation());
  if (acct) {
    if (o.sampled) ++telem_records_;
    telem_self_us_ += us_between(t0, tau::Clock::now());
    if (L.depth == 0) {
      if (gov_ != nullptr) {
        ++gov_calls_;
        governor_window_unlocked(reg);
      }
      if (telem_sink_ != nullptr) maybe_emit_telemetry();
    }
  }
  // The regrid-boundary hook (OnlineRefitter) runs outside the lock: it
  // reads the records and may reconnect framework ports and emit its own
  // governor events, all of which would self-deadlock under mu_.
  const bool fire_boundary =
      L.depth == 0 && boundary_hook_ && method == boundary_method_;
  if (lk.owns_lock()) lk.unlock();
  if (fire_boundary) {
    const tau::Clock::time_point h0 =
        acct ? tau::Clock::now() : tau::Clock::time_point{};
    boundary_hook_();
    if (acct) telem_self_us_ += us_between(h0, tau::Clock::now());
  }
}

void MastermindComponent::start_on_lane(MethodHandle method, ParamSpan params,
                                        const ParamMap* extra, int lane) {
  // Worker lanes never resolve ports or grow the lane table themselves:
  // the rank thread must have monitored (or at least resolved) once before
  // any in-region monitoring, so everything here is sized and immutable.
  CCAPERF_REQUIRE(resolved_.load(std::memory_order_acquire) && shards_ != nullptr,
                  "Mastermind: the first monitored call on a rank must happen on "
                  "the rank thread, before any parallel-region monitoring");
  CCAPERF_REQUIRE(method < methods_count_.load(std::memory_order_acquire),
                  "Mastermind::start: bad method handle");
  CCAPERF_REQUIRE(static_cast<std::size_t>(lane) < lanes_.size(),
                  "Mastermind::start: pool lane outside the measurement shard set");
  Method& m = method_ref(method);
  CCAPERF_REQUIRE(extra != nullptr || params.size == m.param_names.size(),
                  "Mastermind::start: wrong parameter count for '" + m.key + "'");
  tau::Registry& sreg = shards_->shard(lane);
  LaneState& L = lanes_[lane];
  Open& o = push_open(L, method);
  o.n_params = static_cast<std::uint32_t>(params.size);
  for (std::size_t i = 0; i < params.size; ++i) o.param_vals[i] = params.data[i];
  o.mpi_us_start = 0.0;  // no MPI happens on worker lanes
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (extra != nullptr)
      for (const auto& [name, v] : *extra)
        o.extra_params.emplace_back(m.record->ensure_param_column(name), v);
    count_edge(L.depth >= 2 ? L.open[L.depth - 2].method : kInvalidMethodHandle,
               method);
  }
  if (!m.lane_timer_ok[lane]) {
    m.lane_timer[lane] = sreg.timer(m.key, "PROXY");
    m.lane_timer_ok[lane] = 1;
  }
  sreg.start(m.lane_timer[lane]);
  if (sreg.tracing() && params.size > 0) {
    if (!m.lane_arg_ok[lane]) {
      m.lane_arg_string[lane] = sreg.trace_string(m.param_names[0]);
      m.lane_arg_ok[lane] = 1;
    }
    sreg.trace_arg(m.lane_arg_string[lane], params.data[0]);
  }
}

void MastermindComponent::stop_on_lane(MethodHandle method, int lane) {
  CCAPERF_REQUIRE(resolved_.load(std::memory_order_acquire) && shards_ != nullptr,
                  "Mastermind::stop: monitoring stop on an unresolved rank");
  CCAPERF_REQUIRE(method < methods_count_.load(std::memory_order_acquire),
                  "Mastermind::stop: bad method handle");
  Method& m = method_ref(method);
  tau::Registry& sreg = shards_->shard(lane);
  const double wall_us = m.lane_timer_ok[lane] ? sreg.stop(m.lane_timer[lane]) : 0.0;
  LaneState& L = lanes_[lane];
  CCAPERF_REQUIRE(L.depth > 0 && L.open[L.depth - 1].method == method,
                  "Mastermind::stop: mismatched monitoring stop for '" + m.key + "'");
  Open& o = L.open[--L.depth];

  std::lock_guard<std::mutex> lk(mu_);
  Record& rec = *m.record;
  rec.add_times(wall_us, 0.0, wall_us);  // compute == wall off the rank thread
  for (std::size_t i = 0; i < o.n_params; ++i)
    rec.set_param(m.param_cols[i], o.param_vals[i]);
  for (const auto& [col, v] : o.extra_params) rec.set_param(col, v);
  rec.set_param(m.thread_col, static_cast<double>(lane));
  // Hardware counters are rank-level state read on the rank thread only;
  // worker rows leave the counter columns NaN.
  rec.finish_row();
  // Worker lanes are never monitor-sampled (their rows are the parallel
  // region's ground truth), but they still tally into the realized
  // fraction so it stays a true recorded/seen ratio for the method.
  ++m.calls_seen;
  ++m.calls_recorded;
  // Telemetry emission and generation retirement stay on lane 0; worker
  // rows still count toward the emission interval.
  if (telem_sink_ != nullptr) ++telem_records_;
}

void MastermindComponent::start(const std::string& method_key, const ParamMap& params) {
  const int lane = ccaperf::ThreadPool::current_lane();
  if (lane != 0) {
    start_on_lane(intern_method(method_key), ParamSpan{}, &params, lane);
    return;
  }
  const bool acct = telem_sink_ != nullptr || gov_ != nullptr;
  const tau::Clock::time_point t0 = acct ? tau::Clock::now() : tau::Clock::time_point{};
  tau::Registry& reg = registry();
  const MethodHandle h = intern_method(method_key);
  Method& m = method_ref(h);
  LaneState& L = lanes_[0];
  Open& o = push_open(L, h);
  const MethodHandle caller =
      L.depth >= 2 ? L.open[L.depth - 2].method : kInvalidMethodHandle;
  if (threaded_) {
    std::lock_guard<std::mutex> lk(mu_);
    count_edge(caller, h);
    o.sampled = sample_decision(++m.calls_seen);
    if (o.sampled)
      for (const auto& [name, v] : params)
        o.extra_params.emplace_back(m.record->ensure_param_column(name), v);
  } else {
    count_edge(caller, h);
    o.sampled = sample_decision(++m.calls_seen);
    if (o.sampled)
      for (const auto& [name, v] : params)
        o.extra_params.emplace_back(m.record->ensure_param_column(name), v);
  }
  if (o.sampled) {
    o.mpi_us_start = reg.group_inclusive_us(mpi_group_);
    reg.counters().read_values(o.counters_start);
    o.gen_start = reg.generation();
  }
  if (!m.timer_resolved) {
    m.timer = reg.timer(m.key, "PROXY");
    m.timer_resolved = true;
  }
  reg.start(m.timer);
  if (acct) telem_self_us_ += us_between(t0, tau::Clock::now());
}

void MastermindComponent::stop(const std::string& method_key) {
  stop(intern_method(method_key));
}

// --- telemetry ---------------------------------------------------------------

void MastermindComponent::start_telemetry(std::ostream& sink,
                                          std::uint64_t interval_records) {
  tau::Registry& reg = registry();
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  telem_sink_ = &sink;
  telem_interval_base_ = interval_records < 1 ? 1 : interval_records;
  telem_interval_ = telem_interval_base_;
  if (gov_ != nullptr)
    telem_interval_ = telem_interval_base_ * gov_->settings().telem_interval_mult;
  telem_gen_ = reg.generation();
  telem_records_ = 0;
  telem_records_last_ = 0;
  telem_self_us_ = 0.0;
  telem_self_last_ = 0.0;
  telem_start_ = telem_last_ = tau::Clock::now();
  if (gov_ != nullptr) {
    // Re-anchor the governor's cumulative self-cost marker: the telemetry
    // component of self_total just reset to zero.
    gov_self_last_ = self_total_unlocked();
    gov_calls_last_ = gov_calls_;
    gov_last_ = telem_start_;
  }
  reg.counters().read_values(telem_counters_last_);
  telem_group_last_.assign(reg.num_groups(), 0.0);
  for (std::size_t g = 0; g < telem_group_last_.size(); ++g)
    telem_group_last_[g] = reg.group_inclusive_us(g);
}

void MastermindComponent::stop_telemetry() {
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  if (telem_sink_ == nullptr) return;
  emit_telemetry_unlocked();  // final line, so short runs never end up empty
  telem_sink_ = nullptr;
}

// Called with mu_ held on threaded ranks (from the lane-0 stop path).
void MastermindComponent::maybe_emit_telemetry() {
  if (telem_sink_ != nullptr &&
      telem_records_ - telem_records_last_ >= telem_interval_)
    emit_telemetry_unlocked();
}

void MastermindComponent::emit_telemetry() {
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  emit_telemetry_unlocked();
}

void MastermindComponent::emit_telemetry_unlocked() {
  if (telem_sink_ == nullptr) return;
  const tau::Clock::time_point t0 = tau::Clock::now();
  tau::Registry& reg = registry();

  // The incremental query: rows for exactly the timers that fired since
  // the previous line, then advance the low-water mark.
  const std::vector<tau::TimerStats> delta = reg.snapshot_delta(telem_gen_);
  telem_gen_ = reg.generation();

  const double dt_s = us_between(telem_last_, t0) / 1e6;
  const std::uint64_t drec = telem_records_ - telem_records_last_;

  std::ostream& os = *telem_sink_;
  os << "{\"t_us\":" << ccaperf::json_number(us_between(telem_start_, t0), 3)
     << ",\"records\":" << telem_records_
     << ",\"records_per_s\":"
     << ccaperf::json_number(dt_s > 0.0 ? static_cast<double>(drec) / dt_s : 0.0, 3)
     << ",\"timers_changed\":" << delta.size();

  const std::size_t ngroups = reg.num_groups();
  telem_group_last_.resize(ngroups, 0.0);
  std::vector<double> group_now(ngroups, 0.0);
  for (std::size_t g = 0; g < ngroups; ++g) group_now[g] = reg.group_inclusive_us(g);
  os << ",\"group_us\":{";
  for (std::size_t g = 0; g < ngroups; ++g)
    os << (g ? "," : "") << "\"" << ccaperf::json_escape(reg.group_name(g))
       << "\":" << ccaperf::json_number(group_now[g], 3);
  os << "},\"group_delta_us\":{";
  for (std::size_t g = 0; g < ngroups; ++g) {
    os << (g ? "," : "") << "\"" << ccaperf::json_escape(reg.group_name(g))
       << "\":" << ccaperf::json_number(group_now[g] - telem_group_last_[g], 3);
    telem_group_last_[g] = group_now[g];
  }
  os << "}";

  reg.counters().read_values(counters_scratch_);
  const std::vector<std::string> counter_names = reg.counters().names();
  telem_counters_last_.resize(counters_scratch_.size(), 0);
  os << ",\"counter_delta\":{";
  for (std::size_t i = 0; i < counters_scratch_.size(); ++i) {
    os << (i ? "," : "") << "\"" << ccaperf::json_escape(counter_names[i]) << "\":"
       << (counters_scratch_[i] - telem_counters_last_[i]);
    telem_counters_last_[i] = counters_scratch_[i];
  }
  os << "}";

  const tau::TraceBuffer& tb = reg.trace();
  os << ",\"trace\":{\"retained\":" << tb.size() << ",\"total\":" << tb.total()
     << ",\"dropped\":" << tb.dropped() << "}";

  // Optional metadata: the resolved hardware-counter backend and, when the
  // governor is attached, its current throttle level.
  if (!hwc_backend_.empty())
    os << ",\"hwc\":\"" << ccaperf::json_escape(hwc_backend_) << "\"";
  if (!session_label_.empty())
    os << ",\"session\":\"" << ccaperf::json_escape(session_label_) << "\"";
  if (gov_ != nullptr) os << ",\"governor_level\":" << gov_->level();

  ++telem_lines_;
  telem_records_last_ = telem_records_;
  const tau::Clock::time_point prev_line = telem_last_;
  telem_last_ = tau::Clock::now();
  telem_self_us_ += us_between(t0, telem_last_);
  // Realized measurement overhead over the interval this line closes:
  // self-cost delta (including this emission) against wall-clock delta.
  const double interval_wall = us_between(prev_line, telem_last_);
  const double interval_self = telem_self_us_ - telem_self_last_;
  telem_self_last_ = telem_self_us_;
  os << ",\"overhead_pct\":"
     << ccaperf::json_number(
            interval_wall > 0.0
                ? 100.0 * std::max(0.0, interval_self) / interval_wall
                : 0.0,
            3)
     << ",\"self_us\":" << ccaperf::json_number(telem_self_us_, 3) << "}\n";
}

// --- overhead governor (DESIGN.md §12) ---------------------------------------

void MastermindComponent::attach_governor(OverheadGovernor* gov) {
  CCAPERF_REQUIRE(gov != nullptr, "Mastermind::attach_governor: null governor");
  tau::Registry& reg = registry();
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  gov_ = gov;
  gov_seed_ = gov->config().seed;
  gov_monitor_stride_ = gov->settings().monitor_stride;
  gov_calls_last_ = gov_calls_;
  gov_self_last_ = self_total_unlocked();
  gov_last_ = tau::Clock::now();
  // The controller's own decisions become observable state: a GOVERNOR_*
  // counter group sampled into telemetry deltas and the Perfetto counter
  // track like any hardware counter. Registered only on attach, so
  // ungoverned runs keep their exact counter layout.
  hwc::CounterRegistry& cr = reg.counters();
  cr.add_source("GOVERNOR_LEVEL",
                [gov] { return static_cast<std::uint64_t>(gov->level()); });
  cr.add_source("GOVERNOR_DECISIONS", [gov] { return gov->decisions(); });
  cr.add_source("GOVERNOR_THROTTLES", [gov] { return gov->throttles(); });
  cr.add_source("GOVERNOR_UNTHROTTLES", [gov] { return gov->unthrottles(); });
  cr.add_source("GOVERNOR_OVERHEAD_BP", [gov] { return gov->last_overhead_bp(); });
}

void MastermindComponent::add_cost_source(std::string name,
                                          std::function<double()> cumulative_us) {
  CCAPERF_REQUIRE(cumulative_us != nullptr, "Mastermind: null cost source");
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  cost_sources_.emplace_back(std::move(name), std::move(cumulative_us));
}

void MastermindComponent::set_counter_stride_actuator(
    std::function<void(std::uint32_t)> fn) {
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  counter_stride_actuator_ = std::move(fn);
}

void MastermindComponent::set_boundary_hook(const std::string& method_key,
                                            std::function<void()> fn) {
  const MethodHandle h = intern_method(method_key);
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  boundary_method_ = h;
  boundary_hook_ = std::move(fn);
}

void MastermindComponent::set_telemetry_hwc(std::string backend) {
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  hwc_backend_ = std::move(backend);
}

void MastermindComponent::set_telemetry_session(std::string name) {
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  session_label_ = std::move(name);
}

double MastermindComponent::realized_fraction(const std::string& method_key) const {
  const std::size_t n = methods_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const Method& m = methods_[i];
    if (m.key != method_key) continue;
    if (m.calls_seen == 0) return 1.0;
    return static_cast<double>(m.calls_recorded) /
           static_cast<double>(m.calls_seen);
  }
  return 1.0;
}

double MastermindComponent::self_total_unlocked() const {
  double total = telem_self_us_;
  for (const auto& [name, fn] : cost_sources_) total += fn();
  return total;
}

std::uint32_t MastermindComponent::governor_instant_string(tau::Registry& reg,
                                                           bool throttle,
                                                           int level) {
  // Bounded label set (2 directions x kMaxLevel+1 levels), interned lazily
  // so the trace-string table never grows with decision count.
  const std::size_t count =
      2 * static_cast<std::size_t>(OverheadGovernor::kMaxLevel + 1);
  const std::size_t idx = (throttle ? 1u : 0u) *
                              static_cast<std::size_t>(OverheadGovernor::kMaxLevel + 1) +
                          static_cast<std::size_t>(level);
  if (gov_instant_ids_.size() < count) {
    gov_instant_ids_.assign(count, 0);
    gov_instant_ok_.assign(count, 0);
  }
  if (!gov_instant_ok_[idx]) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "governor: %s to L%d",
                  throttle ? "throttle" : "relax", level);
    gov_instant_ids_[idx] = reg.trace_string(buf);
    gov_instant_ok_[idx] = 1;
  }
  return gov_instant_ids_[idx];
}

// Called with mu_ held on threaded ranks (from the lane-0 stop path).
void MastermindComponent::governor_window_unlocked(tau::Registry& reg) {
  const GovernorConfig& cfg = gov_->config();
  if (gov_calls_ - gov_calls_last_ < cfg.window_records) return;
  const tau::Clock::time_point now = tau::Clock::now();
  OverheadGovernor::Window w;
  w.wall_us = us_between(gov_last_, now);
  const double self = self_total_unlocked();
  w.self_us = self - gov_self_last_;
  w.records = gov_calls_ - gov_calls_last_;
  const OverheadGovernor::Decision d = gov_->observe(w);
  if (!d.evaluated) return;  // degenerate window: keep accumulating
  gov_last_ = now;
  gov_self_last_ = self;
  gov_calls_last_ = gov_calls_;
  if (d.changed) {
    // Audit trail: sample the counter track (GOVERNOR_LEVEL already holds
    // the new level) under the *outgoing* verbosity, actuate, then drop an
    // instant marker — instants survive every tier.
    reg.trace_counter_samples();
    apply_governor_settings_unlocked(reg, d);
    reg.trace_instant(
        governor_instant_string(reg, d.level > d.prev_level, d.level));
    emit_governor_line_unlocked(d);
  }
}

void MastermindComponent::apply_governor_settings_unlocked(
    tau::Registry& reg, const OverheadGovernor::Decision& d) {
  (void)d;
  const OverheadGovernor::Settings s = gov_->settings();
  reg.set_trace_tier(s.trace_tier);
  telem_interval_ = telem_interval_base_ * s.telem_interval_mult;
  if (telem_interval_ < 1) telem_interval_ = 1;
  gov_monitor_stride_ = s.monitor_stride;
  if (counter_stride_actuator_) counter_stride_actuator_(s.cachesim_stride);
}

void MastermindComponent::emit_governor_line_unlocked(
    const OverheadGovernor::Decision& d) {
  if (telem_sink_ == nullptr) return;
  const OverheadGovernor::Settings s = gov_->settings();
  std::ostream& os = *telem_sink_;
  os << "{\"t_us\":"
     << ccaperf::json_number(us_between(telem_start_, tau::Clock::now()), 3)
     << ",\"governor\":{\"event\":\"tier\",\"level\":" << d.level
     << ",\"prev\":" << d.prev_level
     << ",\"overhead_pct\":" << ccaperf::json_number(d.overhead_pct, 3)
     << ",\"budget_pct\":" << ccaperf::json_number(gov_->config().budget_pct, 3)
     << ",\"headroom_pct\":" << ccaperf::json_number(d.headroom_pct, 3)
     << ",\"trace_tier\":\"" << tau::trace_tier_name(s.trace_tier)
     << "\",\"monitor_stride\":" << s.monitor_stride
     << ",\"telem_interval\":" << telem_interval_
     << ",\"cachesim_stride\":" << s.cachesim_stride << "}}\n";
  ++telem_lines_;
}

void MastermindComponent::emit_governor_event(const char* kind,
                                              const std::string& fields_json) {
  tau::Registry& reg = registry();
  std::unique_lock<std::mutex> lk;
  if (threaded_) lk = std::unique_lock<std::mutex>(mu_);
  if (telem_sink_ != nullptr) {
    *telem_sink_ << "{\"t_us\":"
                 << ccaperf::json_number(us_between(telem_start_, tau::Clock::now()), 3)
                 << ",\"governor\":{\"event\":\"" << kind << "\""
                 << (fields_json.empty() ? "" : ",") << fields_json << "}}\n";
    ++telem_lines_;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "governor: %s", kind);
  reg.trace_instant(reg.trace_string(buf));
}

void MastermindComponent::refresh_counter_columns(Method& m) {
  m.counter_cols.clear();
  for (const std::string& n : reg_->counters().names())
    m.counter_cols.push_back(m.record->ensure_counter_column(n));
}

void MastermindComponent::count_edge(MethodHandle caller, MethodHandle callee) {
  for (std::size_t i = 0; i < edge_ids_.size(); ++i) {
    if (edge_ids_[i].first == caller && edge_ids_[i].second == callee) {
      ++edges_[i].count;
      return;
    }
  }
  edge_ids_.emplace_back(caller, callee);
  edges_.push_back(CallEdge{
      caller == kInvalidMethodHandle ? std::string{} : methods_[caller].key,
      methods_[callee].key, 1});
}

std::uint64_t MastermindComponent::call_count(const std::string& caller,
                                              const std::string& callee) const {
  for (const CallEdge& e : edges_)
    if (e.caller == caller && e.callee == callee) return e.count;
  return 0;
}

const Record* MastermindComponent::record(const std::string& method_key) const {
  for (const Method& m : methods_)
    if (m.key == method_key && m.record->count() > 0) return m.record.get();
  return nullptr;
}

std::vector<std::string> MastermindComponent::method_keys() const {
  std::vector<std::string> keys;
  keys.reserve(methods_.size());
  for (const Method& m : methods_)
    if (m.record->count() > 0) keys.push_back(m.key);
  return keys;
}

void MastermindComponent::dump_all(const std::string& dir, int rank) const {
  std::filesystem::create_directories(dir);
  for (const Method& m : methods_) {
    if (m.record->count() == 0) continue;
    std::string name = m.key;
    for (char& ch : name)
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    std::ofstream os(dir + "/" + name + ".rank" + std::to_string(rank) + ".csv");
    m.record->dump_csv(os);
  }
}

MastermindComponent::~MastermindComponent() {
  if (dump_dir_) dump_all(*dump_dir_, dump_rank_);
}

}  // namespace core
