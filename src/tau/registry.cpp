#include "tau/registry.hpp"

#include <algorithm>
#include <ostream>

namespace tau {

namespace {
double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
}  // namespace

TimerId Registry::timer(const std::string& name, const std::string& group) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const TimerId id = timers_.size();
  timers_.push_back(TimerStats{name, group, 0, 0.0, 0.0});
  active_depth_.push_back(0);
  by_name_.emplace(name, id);
  return id;
}

void Registry::start(TimerId id) {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry::start: bad timer id");
  Frame f;
  f.id = id;
  f.start = Clock::now();
  f.enabled = group_enabled(timers_[id].group);
  if (tracing_ && f.enabled)
    trace_.push_back(TraceEvent{us_between(trace_epoch_, f.start), id, true});
  stack_.push_back(f);
  ++active_depth_[id];
}

void Registry::stop(TimerId id) {
  CCAPERF_REQUIRE(!stack_.empty(), "Registry::stop: no running timer");
  CCAPERF_REQUIRE(stack_.back().id == id,
                  "Registry::stop: timers must stop in LIFO order (stopping '" +
                      timers_[id].name + "' but innermost is '" +
                      timers_[stack_.back().id].name + "')");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const Clock::time_point now = Clock::now();
  if (tracing_ && frame.enabled)
    trace_.push_back(TraceEvent{us_between(trace_epoch_, now), id, false});
  const double elapsed = us_between(frame.start, now);
  CCAPERF_REQUIRE(active_depth_[id] > 0, "Registry::stop: depth underflow");
  --active_depth_[id];

  if (frame.enabled) {
    TimerStats& t = timers_[id];
    ++t.calls;
    // Recursive activations only add inclusive time at the outermost level.
    if (active_depth_[id] == 0) t.inclusive_us += elapsed;
    t.exclusive_us += elapsed - frame.child_us;
    if (!stack_.empty()) stack_.back().child_us += elapsed;
  } else if (!stack_.empty()) {
    // Disabled timer: behave as if uninstrumented — its *enabled* callee
    // time still subtracts from the nearest enabled ancestor's exclusive.
    stack_.back().child_us += frame.child_us;
  }
}

void Registry::set_group_enabled(const std::string& group, bool enabled) {
  group_enabled_[group] = enabled;
}

bool Registry::group_enabled(const std::string& group) const {
  auto it = group_enabled_.find(group);
  return it == group_enabled_.end() ? true : it->second;
}

void Registry::trigger(const std::string& event_name, double value) {
  events_[event_name].add(value);
}

double Registry::now_partial_inclusive(TimerId id) const {
  // Partial elapsed of the *outermost* running activation of `id`.
  if (active_depth_[id] == 0) return 0.0;
  const auto now = Clock::now();
  for (const Frame& f : stack_)
    if (f.id == id) return f.enabled ? us_between(f.start, now) : 0.0;
  return 0.0;
}

double Registry::inclusive_us(TimerId id) const {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry: bad timer id");
  return timers_[id].inclusive_us + now_partial_inclusive(id);
}

double Registry::exclusive_us(TimerId id) const {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry: bad timer id");
  double v = timers_[id].exclusive_us;
  // Running partials: each running activation of id contributes
  // (now - start - child_us accumulated so far), but only frames whose
  // callee is not also running... For the innermost activation the callee
  // time is exactly frame.child_us; for outer activations the currently
  // running child's time is not yet in child_us, so subtract the child
  // frame's elapsed instead. We walk the stack accumulating correctly.
  const auto now = Clock::now();
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    if (f.id != id || !f.enabled) continue;
    const double elapsed = us_between(f.start, now);
    double child = f.child_us;
    if (i + 1 < stack_.size()) {
      // The running child's whole elapsed time belongs to callees.
      const Frame& kid = stack_[i + 1];
      child += us_between(kid.start, now);
    }
    v += elapsed - child;
  }
  return v;
}

double Registry::group_inclusive_us(const std::string& group) const {
  double total = 0.0;
  for (TimerId id = 0; id < timers_.size(); ++id)
    if (timers_[id].group == group) total += inclusive_us(id);
  return total;
}

void Registry::set_tracing(bool enabled) {
  tracing_ = enabled;
  trace_.clear();
  if (enabled) trace_epoch_ = Clock::now();
}

void Registry::dump_trace(std::ostream& os) const {
  for (const TraceEvent& e : trace_)
    os << e.t_us << ' ' << (e.enter ? "enter" : "exit") << ' '
       << timers_[e.id].name << '\n';
}

std::vector<TimerStats> Registry::snapshot() const {
  std::vector<TimerStats> rows = timers_;
  for (TimerId id = 0; id < rows.size(); ++id) {
    rows[id].inclusive_us = inclusive_us(id);
    rows[id].exclusive_us = exclusive_us(id);
    // Count running activations as calls-in-progress? TAU reports completed
    // calls; we keep that convention.
  }
  return rows;
}

}  // namespace tau
