#include "tau/registry.hpp"

#include <algorithm>
#include <ostream>

namespace tau {

namespace {

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// FNV-1a over the name bytes — cheap, allocation-free, good enough for a
/// table whose keys are a few dozen distinct method/timer names.
std::uint64_t hash_name(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// --- name interner -----------------------------------------------------------

std::size_t Registry::probe_name(std::string_view name) const {
  // Returns the bucket holding `name`, or the empty bucket where it would
  // be inserted. Callers guarantee the table is non-empty and not full.
  const std::size_t mask = name_buckets_.size() - 1;
  std::size_t b = static_cast<std::size_t>(hash_name(name)) & mask;
  while (true) {
    const std::uint32_t v = name_buckets_[b];
    if (v == 0 || timers_[v - 1].name == name) return b;
    b = (b + 1) & mask;
  }
}

void Registry::rehash_names(std::size_t capacity) {
  name_buckets_.assign(capacity, 0);
  for (TimerId id = 0; id < timers_.size(); ++id) {
    const std::size_t b = probe_name(timers_[id].name);
    name_buckets_[b] = static_cast<std::uint32_t>(id) + 1;
  }
}

TimerId Registry::timer(std::string_view name, std::string_view group) {
  if (name_buckets_.empty()) rehash_names(64);
  std::size_t b = probe_name(name);
  if (name_buckets_[b] != 0) return name_buckets_[b] - 1;

  const TimerId id = timers_.size();
  timers_.push_back(TimerStats{std::string(name), std::string(group), 0, 0.0, 0.0});
  active_depth_.push_back(0);
  timer_group_.push_back(intern_group(group));
  timer_gen_.push_back(0);
  // Keep load factor under 1/2 so probes stay short.
  if ((timers_.size() + 1) * 2 > name_buckets_.size()) {
    rehash_names(name_buckets_.size() * 2);
    b = probe_name(name);
  }
  name_buckets_[b] = static_cast<std::uint32_t>(id) + 1;
  return id;
}

bool Registry::has_timer(std::string_view name) const {
  if (name_buckets_.empty()) return false;
  return name_buckets_[probe_name(name)] != 0;
}

// --- groups ------------------------------------------------------------------

GroupId Registry::intern_group(std::string_view group) {
  // Handful of groups only (TAU_DEFAULT, MPI, PROXY, ...): linear scan.
  for (GroupId g = 0; g < groups_.size(); ++g)
    if (groups_[g].name == group) return g;
  Group g;
  g.name = std::string(group);
  // Groups interned after a registry-wide tier change inherit it, so a
  // throttled run cannot leak full-verbosity slices through late timers.
  g.tier = trace_tier_;
  g.slices_ok = trace_tier_ <= TraceTier::slices;
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

GroupId Registry::group_id(std::string_view group) { return intern_group(group); }

const Registry::Group* Registry::find_group(std::string_view group) const {
  for (const Group& g : groups_)
    if (g.name == group) return &g;
  return nullptr;
}

void Registry::set_group_enabled(std::string_view group, bool enabled) {
  groups_[intern_group(group)].enabled = enabled;
}

bool Registry::group_enabled(std::string_view group) const {
  const Group* g = find_group(group);
  return g == nullptr ? true : g->enabled;
}

// --- generations -------------------------------------------------------------

void Registry::touch(TimerId id) {
  gen_dirty_ = true;
  if (timer_gen_[id] == gen_) return;
  timer_gen_[id] = gen_;
  touch_log_.push_back(Touch{gen_, id});
}

std::vector<TimerStats> Registry::snapshot_delta(Generation since) const {
  std::vector<TimerStats> rows;
  // Touched timers are logged oldest-generation first; one entry per timer
  // per generation, so dedupe against rows already emitted this call.
  auto it = std::lower_bound(
      touch_log_.begin() + static_cast<std::ptrdiff_t>(touch_head_), touch_log_.end(),
      since, [](const Touch& t, Generation g) { return t.gen < g; });
  std::vector<bool> seen(timers_.size(), false);
  for (; it != touch_log_.end(); ++it) {
    if (seen[it->id]) continue;
    seen[it->id] = true;
    TimerStats row = timers_[it->id];
    row.inclusive_us = inclusive_us(it->id);
    row.exclusive_us = exclusive_us(it->id);
    rows.push_back(std::move(row));
  }
  // The *next* timer activity opens a new generation, so a later delta
  // taken at the returned boundary excludes what this one already saw.
  if (gen_dirty_) {
    ++gen_;
    gen_dirty_ = false;
  }
  return rows;
}

void Registry::retire_generations_before(Generation g) {
  while (touch_head_ < touch_log_.size() && touch_log_[touch_head_].gen < g)
    ++touch_head_;
  // Compact once the retired prefix dominates, to amortize the erase.
  if (touch_head_ > 64 && touch_head_ * 2 > touch_log_.size()) {
    touch_log_.erase(touch_log_.begin(),
                     touch_log_.begin() + static_cast<std::ptrdiff_t>(touch_head_));
    touch_head_ = 0;
  }
}

// --- shard merging -----------------------------------------------------------

void Registry::absorb(const TimerStats& row) {
  if (row.calls == 0 && row.inclusive_us == 0.0 && row.exclusive_us == 0.0)
    return;
  const TimerId id = timer(row.name, row.group);
  touch(id);
  TimerStats& t = timers_[id];
  t.calls += row.calls;
  t.inclusive_us += row.inclusive_us;
  t.exclusive_us += row.exclusive_us;
  groups_[timer_group_[id]].inclusive_us += row.inclusive_us;
}

void Registry::absorb_events(const std::map<std::string, AtomicEvent>& events) {
  for (const auto& [name, ev] : events) events_[name].merge(ev);
}

std::vector<TimerStats> Registry::drain() {
  CCAPERF_REQUIRE(stack_.empty(), "Registry::drain: timers still running");
  std::vector<TimerStats> rows;
  for (TimerStats& t : timers_) {
    if (t.calls == 0 && t.inclusive_us == 0.0 && t.exclusive_us == 0.0)
      continue;
    rows.push_back(t);
    t.calls = 0;
    t.inclusive_us = 0.0;
    t.exclusive_us = 0.0;
  }
  for (Group& g : groups_) g.inclusive_us = 0.0;
  return rows;
}

std::map<std::string, AtomicEvent> Registry::take_events() {
  std::map<std::string, AtomicEvent> out;
  out.swap(events_);
  return out;
}

// --- start/stop --------------------------------------------------------------

void Registry::start(TimerId id) {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry::start: bad timer id");
  Frame f;
  f.id = id;
  const Group& g = groups_[timer_group_[id]];
  f.enabled = g.enabled;
  touch(id);
  f.start = Clock::now();
  f.traced = tracing_ && f.enabled && g.slices_ok;
  if (f.traced) {
    TraceRecord r;
    r.t_us = us_between(trace_epoch_, f.start);
    r.id = static_cast<std::uint32_t>(id);
    r.kind = TraceKind::enter;
    trace_.push(r);
  }
  stack_.push_back(f);
  ++active_depth_[id];
}

double Registry::stop(TimerId id) {
  CCAPERF_REQUIRE(!stack_.empty(), "Registry::stop: no running timer");
  CCAPERF_REQUIRE(stack_.back().id == id,
                  "Registry::stop: timers must stop in LIFO order (stopping '" +
                      timers_[id].name + "' but innermost is '" +
                      timers_[stack_.back().id].name + "')");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const Clock::time_point now = Clock::now();
  if (tracing_ && frame.traced) {
    TraceRecord r;
    r.t_us = us_between(trace_epoch_, now);
    r.id = static_cast<std::uint32_t>(id);
    r.kind = TraceKind::exit;
    trace_.push(r);
  }
  const double elapsed = us_between(frame.start, now);
  CCAPERF_REQUIRE(active_depth_[id] > 0, "Registry::stop: depth underflow");
  --active_depth_[id];
  touch(id);

  if (frame.enabled) {
    TimerStats& t = timers_[id];
    ++t.calls;
    // Recursive activations only add inclusive time at the outermost level.
    if (active_depth_[id] == 0) {
      t.inclusive_us += elapsed;
      groups_[timer_group_[id]].inclusive_us += elapsed;
    }
    t.exclusive_us += elapsed - frame.child_us;
    if (!stack_.empty()) stack_.back().child_us += elapsed;
  } else if (!stack_.empty()) {
    // Disabled timer: behave as if uninstrumented — its *enabled* callee
    // time still subtracts from the nearest enabled ancestor's exclusive.
    stack_.back().child_us += frame.child_us;
  }
  return elapsed;
}

// --- events ------------------------------------------------------------------

void Registry::trigger(const std::string& event_name, double value) {
  events_[event_name].add(value);
}

// --- queries -----------------------------------------------------------------

double Registry::now_partial_inclusive(TimerId id) const {
  // Partial elapsed of the *outermost* running activation of `id`.
  if (active_depth_[id] == 0) return 0.0;
  const auto now = Clock::now();
  for (const Frame& f : stack_)
    if (f.id == id) return f.enabled ? us_between(f.start, now) : 0.0;
  return 0.0;
}

double Registry::inclusive_us(TimerId id) const {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry: bad timer id");
  return timers_[id].inclusive_us + now_partial_inclusive(id);
}

double Registry::exclusive_us(TimerId id) const {
  CCAPERF_REQUIRE(id < timers_.size(), "Registry: bad timer id");
  double v = timers_[id].exclusive_us;
  // Running partials: each running activation of id contributes
  // (now - start - child_us accumulated so far), but only frames whose
  // callee is not also running... For the innermost activation the callee
  // time is exactly frame.child_us; for outer activations the currently
  // running child's time is not yet in child_us, so subtract the child
  // frame's elapsed instead. We walk the stack accumulating correctly.
  const auto now = Clock::now();
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    if (f.id != id || !f.enabled) continue;
    const double elapsed = us_between(f.start, now);
    double child = f.child_us;
    if (i + 1 < stack_.size()) {
      // The running child's whole elapsed time belongs to callees.
      const Frame& kid = stack_[i + 1];
      child += us_between(kid.start, now);
    }
    v += elapsed - child;
  }
  return v;
}

double Registry::group_inclusive_us(GroupId gid) const {
  CCAPERF_REQUIRE(gid < groups_.size(), "Registry: bad group id");
  double total = groups_[gid].inclusive_us;
  if (stack_.empty()) return total;
  // Running partials: the outermost running activation of each group
  // member (recursive re-activations already fold into the outermost).
  const auto now = Clock::now();
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    if (!f.enabled || timer_group_[f.id] != gid) continue;
    bool outermost = true;
    for (std::size_t j = 0; j < i; ++j)
      if (stack_[j].id == f.id) {
        outermost = false;
        break;
      }
    if (outermost) total += us_between(f.start, now);
  }
  return total;
}

double Registry::group_inclusive_us(std::string_view group) const {
  const Group* g = find_group(group);
  if (g == nullptr) return 0.0;
  return group_inclusive_us(static_cast<GroupId>(g - groups_.data()));
}

// --- snapshots & tracing -----------------------------------------------------

void Registry::trace_push_open_frames(bool as_exit) {
  // Synthetic balance events for activations currently on the stack:
  // enters (at the epoch, outermost first) when tracing starts mid-run,
  // exits (at now, innermost first) when it stops mid-activation. The
  // per-frame `traced` flag tracks which open activations currently have
  // an unmatched enter in the buffer.
  const double t = as_exit ? us_between(trace_epoch_, Clock::now()) : 0.0;
  const std::size_t n = stack_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Frame& f = stack_[as_exit ? n - 1 - k : k];
    if (as_exit) {
      if (!f.traced) continue;
      f.traced = false;
    } else {
      f.traced = f.enabled && groups_[timer_group_[f.id]].slices_ok;
      if (!f.traced) continue;
    }
    TraceRecord r;
    r.t_us = t;
    r.id = static_cast<std::uint32_t>(f.id);
    r.kind = as_exit ? TraceKind::exit : TraceKind::enter;
    r.flags = TraceRecord::kSynthetic;
    trace_.push(r);
  }
}

void Registry::trace_rebalance_group(GroupId gid, bool enable) {
  const double t = us_between(trace_epoch_, Clock::now());
  const std::size_t n = stack_.size();
  for (std::size_t k = 0; k < n; ++k) {
    // Disable closes innermost-first, enable re-opens outermost-first, so
    // the event stream stays properly nested either way.
    Frame& f = stack_[enable ? k : n - 1 - k];
    if (timer_group_[f.id] != gid) continue;
    if (enable) {
      if (f.traced || !f.enabled) continue;
      f.traced = true;
    } else {
      if (!f.traced) continue;
      f.traced = false;
    }
    TraceRecord r;
    r.t_us = t;
    r.id = static_cast<std::uint32_t>(f.id);
    r.kind = enable ? TraceKind::enter : TraceKind::exit;
    r.flags = TraceRecord::kSynthetic;
    trace_.push(r);
  }
}

void Registry::set_group_trace_tier(GroupId gid, TraceTier t) {
  CCAPERF_REQUIRE(gid < groups_.size(), "Registry: bad group id");
  Group& g = groups_[gid];
  const bool want = t <= TraceTier::slices;
  if (tracing_ && want != g.slices_ok) {
    // Flip the cached gate before rebalancing so catch-up enters see the
    // new state; exits only consult per-frame `traced` flags.
    g.slices_ok = want;
    trace_rebalance_group(gid, want);
  }
  g.tier = t;
  g.slices_ok = want;
}

void Registry::set_trace_tier(TraceTier t) {
  trace_tier_ = t;
  for (GroupId gid = 0; gid < groups_.size(); ++gid)
    set_group_trace_tier(gid, t);
}

const char* trace_tier_name(TraceTier t) {
  switch (t) {
    case TraceTier::full:
      return "full";
    case TraceTier::slices:
      return "slices";
    case TraceTier::counters:
      return "counters";
    case TraceTier::off:
      return "off";
  }
  return "?";
}

void Registry::set_tracing(bool enabled) {
  if (enabled) {
    trace_.clear();
    trace_epoch_ = Clock::now();
    tracing_ = true;
    trace_push_open_frames(/*as_exit=*/false);
  } else {
    // Close open activations so the retained trace stays balanced; keep
    // the events so the run can still be exported after tracing stops.
    if (tracing_) trace_push_open_frames(/*as_exit=*/true);
    tracing_ = false;
  }
}

void Registry::set_tracing_from_epoch(Clock::time_point epoch) {
  trace_.clear();
  trace_epoch_ = epoch;
  tracing_ = true;
  trace_push_open_frames(/*as_exit=*/false);
}

void Registry::set_trace_capacity(std::size_t events) {
  trace_.set_capacity(events);
}

void Registry::trace_message(bool send, int peer, int tag, std::uint64_t bytes,
                             std::uint64_t seq) {
  if (!tracing_ || trace_tier_ != TraceTier::full) return;
  TraceRecord r;
  r.t_us = us_between(trace_epoch_, Clock::now());
  r.kind = send ? TraceKind::msg_send : TraceKind::msg_recv;
  r.peer = peer;
  r.tag = tag;
  r.payload = bytes;
  r.seq = seq;
  trace_.push(r);
}

void Registry::trace_counter_samples() {
  if (!tracing_ || trace_tier_ > TraceTier::counters) return;
  const double t = us_between(trace_epoch_, Clock::now());
  counters_.read_values(counters_scratch_);
  for (std::size_t i = 0; i < counters_scratch_.size(); ++i) {
    TraceRecord r;
    r.t_us = t;
    r.id = static_cast<std::uint32_t>(i);
    r.kind = TraceKind::counter;
    r.set_value(static_cast<double>(counters_scratch_[i]));
    trace_.push(r);
  }
}

void Registry::trace_arg(std::uint32_t name_string, double value) {
  if (trace_tier_ != TraceTier::full) return;
  TraceRecord* last = trace_.back();
  if (last == nullptr || last->kind != TraceKind::enter) return;
  last->tag = static_cast<std::int32_t>(name_string);
  last->set_value(value);
  last->flags |= TraceRecord::kHasArg;
}

void Registry::trace_instant(std::uint32_t name_string) {
  if (!tracing_) return;
  TraceRecord r;
  r.t_us = us_between(trace_epoch_, Clock::now());
  r.id = name_string;
  r.kind = TraceKind::instant;
  trace_.push(r);
}

std::vector<TraceRecord> Registry::snapshot_trace() const {
  std::vector<TraceRecord> out;
  out.reserve(trace_.size() + stack_.size());
  for (std::size_t i = 0; i < trace_.size(); ++i) out.push_back(trace_[i]);
  if (tracing_) {
    const double t = us_between(trace_epoch_, Clock::now());
    for (std::size_t k = stack_.size(); k-- > 0;) {
      if (!stack_[k].traced) continue;
      TraceRecord r;
      r.t_us = t;
      r.id = static_cast<std::uint32_t>(stack_[k].id);
      r.kind = TraceKind::exit;
      r.flags = TraceRecord::kSynthetic;
      out.push_back(r);
    }
  }
  return out;
}

void Registry::dump_trace(std::ostream& os) const {
  for (const TraceRecord& e : snapshot_trace()) {
    os << e.t_us << '\t';
    switch (e.kind) {
      case TraceKind::enter:
      case TraceKind::exit:
        os << (e.is_enter() ? "enter" : "exit") << '\t' << timers_[e.id].name;
        break;
      case TraceKind::instant:
        os << "instant\t"
           << (e.id < trace_strings_.size() ? trace_strings_.name(e.id) : "?");
        break;
      case TraceKind::counter: {
        const auto names = counters_.names();
        os << "counter\t" << (e.id < names.size() ? names[e.id] : "?") << '\t'
           << e.value();
        break;
      }
      case TraceKind::msg_send:
      case TraceKind::msg_recv:
        os << (e.kind == TraceKind::msg_send ? "send" : "recv") << '\t'
           << e.peer << '\t' << e.tag << '\t' << e.payload << '\t' << e.seq;
        break;
    }
    os << '\n';
  }
}

std::vector<TimerStats> Registry::snapshot() const {
  std::vector<TimerStats> rows = timers_;
  for (TimerId id = 0; id < rows.size(); ++id) {
    rows[id].inclusive_us = inclusive_us(id);
    rows[id].exclusive_us = exclusive_us(id);
    // Count running activations as calls-in-progress? TAU reports completed
    // calls; we keep that convention.
  }
  return rows;
}

}  // namespace tau
