#pragma once
// Bridges mpp's PMPI-style hooks to a tau::Registry.
//
// Install one adapter per rank (RAII via mpp::HooksInstaller) and every
// mpp communication call is timed under a timer named after the MPI
// routine ("MPI_Waitsome()", ...) in the "MPI" group. This is requirement
// (2) of the paper's Section 3.2: "the total time spent in message passing
// calls, as determined by the total inclusive time spent in MPI during a
// method invocation" — the Mastermind reads it via
// Registry::group_inclusive_us(tau::kMpiGroup). Message sizes are also
// recorded as an atomic event, which Fig. 9-style analyses consume.

#include "mpp/hooks.hpp"
#include "tau/registry.hpp"

namespace tau {

class MpiHookAdapter final : public mpp::CommHooks {
 public:
  explicit MpiHookAdapter(Registry& reg) : reg_(reg) {}

  void on_begin(const char* mpi_name) override {
    reg_.start(reg_.timer(mpi_name, kMpiGroup));
  }

  void on_end(const char* mpi_name, std::size_t bytes) override {
    reg_.stop(reg_.timer(mpi_name, kMpiGroup));
    if (bytes > 0)
      reg_.trigger("Message size (bytes)", static_cast<double>(bytes));
  }

  void on_message_send(const mpp::MsgEvent& e) override {
    if (reg_.tracing() && reg_.group_enabled(kMpiGroup))
      reg_.trace_message(/*send=*/true, e.dst, e.tag, e.bytes, e.seq);
  }

  void on_message_recv(const mpp::MsgEvent& e) override {
    if (reg_.tracing() && reg_.group_enabled(kMpiGroup))
      reg_.trace_message(/*send=*/false, e.src, e.tag, e.bytes, e.seq);
  }

 private:
  Registry& reg_;
};

}  // namespace tau
