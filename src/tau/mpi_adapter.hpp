#pragma once
// Bridges mpp's PMPI-style hooks to a tau::Registry.
//
// Install one adapter per rank (RAII via mpp::HooksInstaller) and every
// mpp communication call is timed under a timer named after the MPI
// routine ("MPI_Waitsome()", ...) in the "MPI" group. This is requirement
// (2) of the paper's Section 3.2: "the total time spent in message passing
// calls, as determined by the total inclusive time spent in MPI during a
// method invocation" — the Mastermind reads it via
// Registry::group_inclusive_us(tau::kMpiGroup). Message sizes are also
// recorded as an atomic event, which Fig. 9-style analyses consume.

#include "mpp/hooks.hpp"
#include "tau/registry.hpp"

namespace tau {

class MpiHookAdapter final : public mpp::CommHooks {
 public:
  explicit MpiHookAdapter(Registry& reg) : reg_(reg) {}

  void on_begin(const char* mpi_name) override {
    reg_.start(reg_.timer(mpi_name, kMpiGroup));
  }

  void on_end(const char* mpi_name, std::size_t bytes) override {
    reg_.stop(reg_.timer(mpi_name, kMpiGroup));
    if (bytes > 0)
      reg_.trigger("Message size (bytes)", static_cast<double>(bytes));
  }

  void on_message_send(const mpp::MsgEvent& e) override {
    if (reg_.tracing() && reg_.group_enabled(kMpiGroup))
      reg_.trace_message(/*send=*/true, e.dst, e.tag, e.bytes, e.seq);
  }

  void on_message_recv(const mpp::MsgEvent& e) override {
    if (reg_.tracing() && reg_.group_enabled(kMpiGroup))
      reg_.trace_message(/*send=*/false, e.src, e.tag, e.bytes, e.seq);
  }

  /// Fault-layer accounting. Counters register on the FIRST event only, so
  /// a fault-free run leaves the registry (and every downstream artifact:
  /// Mastermind columns, telemetry JSONL, Perfetto export) byte-identical
  /// to a run without the fault layer. Once registered, the counters flow
  /// automatically into Mastermind record columns and TelemetryPort
  /// counter_delta fields; under tracing each event also lands as a
  /// Perfetto instant plus a full counter-track sample.
  void on_fault(const mpp::FaultEvent& e) override {
    if (!fault_counters_registered_) {
      fault_counters_registered_ = true;
      auto& c = reg_.counters();
      c.add_source(kFaultInjected, [this] { return injected_; });
      c.add_source(kFaultDrops, [this] { return drops_; });
      c.add_source(kFaultDelays, [this] { return delays_; });
      c.add_source(kFaultDuplicates, [this] { return duplicates_; });
      c.add_source(kFaultReorders, [this] { return reorders_; });
      c.add_source(kFaultStalls, [this] { return stalls_; });
      c.add_source(kFaultRetries, [this] { return retries_; });
      c.add_source(kFaultRetriesExhausted, [this] { return retries_exhausted_; });
      c.add_source(kFaultDupSuppressed, [this] { return dup_suppressed_; });
      c.add_source(kFaultTimeouts, [this] { return timeouts_; });
      c.add_source(kFaultStale, [this] { return stale_; });
    }
    switch (e.type) {
      case mpp::FaultEvent::Type::injected:
        ++injected_;
        switch (e.kind) {
          case mpp::FaultKind::drop: ++drops_; break;
          case mpp::FaultKind::delay: ++delays_; break;
          case mpp::FaultKind::duplicate: ++duplicates_; break;
          case mpp::FaultKind::reorder: ++reorders_; break;
          case mpp::FaultKind::stall: ++stalls_; break;
          case mpp::FaultKind::none: break;
        }
        break;
      case mpp::FaultEvent::Type::retry: ++retries_; break;
      case mpp::FaultEvent::Type::retry_exhausted: ++retries_exhausted_; break;
      case mpp::FaultEvent::Type::duplicate_suppressed: ++dup_suppressed_; break;
      case mpp::FaultEvent::Type::timeout: ++timeouts_; break;
      case mpp::FaultEvent::Type::stale_fallback: ++stale_; break;
    }
    if (reg_.tracing() && reg_.group_enabled(kMpiGroup)) {
      reg_.trace_instant(fault_label(e.type));
      reg_.trace_counter_samples();
    }
  }

  /// Sum of every fault event this adapter has seen (tests: no silent
  /// faults).
  std::uint64_t fault_events_total() const {
    return injected_ + retries_ + retries_exhausted_ + dup_suppressed_ +
           timeouts_ + stale_;
  }

  static constexpr const char* kFaultInjected = "FAULT_INJECTED";
  static constexpr const char* kFaultDrops = "FAULT_DROPS";
  static constexpr const char* kFaultDelays = "FAULT_DELAYS";
  static constexpr const char* kFaultDuplicates = "FAULT_DUPLICATES";
  static constexpr const char* kFaultReorders = "FAULT_REORDERS";
  static constexpr const char* kFaultStalls = "FAULT_STALLS";
  static constexpr const char* kFaultRetries = "FAULT_RETRIES";
  static constexpr const char* kFaultRetriesExhausted = "FAULT_RETRIES_EXHAUSTED";
  static constexpr const char* kFaultDupSuppressed = "FAULT_DUP_SUPPRESSED";
  static constexpr const char* kFaultTimeouts = "FAULT_TIMEOUTS";
  static constexpr const char* kFaultStale = "FAULT_STALE_FALLBACKS";

 private:
  std::uint32_t fault_label(mpp::FaultEvent::Type type) {
    auto& slot = fault_labels_[static_cast<std::size_t>(type)];
    if (slot == 0) {
      static constexpr const char* kNames[] = {
          "fault::injected",        "fault::retry",
          "fault::retry_exhausted", "fault::dup_suppressed",
          "fault::timeout",         "fault::stale_fallback"};
      slot = reg_.trace_string(kNames[static_cast<std::size_t>(type)]) + 1;
    }
    return slot - 1;
  }

  Registry& reg_;
  bool fault_counters_registered_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retries_exhausted_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t stale_ = 0;
  /// Interned trace-string indices (+1; 0 = not yet interned), one per
  /// FaultEvent::Type.
  std::uint32_t fault_labels_[6] = {};
};

}  // namespace tau
