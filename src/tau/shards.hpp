#pragma once
// tau::RegistryShards — per-thread measurement shards for one rank
// (DESIGN.md §9).
//
// A Registry is single-threaded by design, so a multi-threaded rank gets
// one *shard* Registry per pool lane: lane 0 uses the rank's primary
// registry directly, lanes 1..N-1 time into private shards with no
// synchronization on the measurement hot path. At every region barrier
// (the thread pool's region-end hook) the shards fold into the primary in
// lane order — plain additions in a fixed order, so merged call counts
// and counter sums are exactly the values a serial run would produce, and
// the primary's generation/touch machinery makes the merge visible to
// snapshot_delta / telemetry consumers unchanged.
//
// Tracing: shards mirror the primary's ring capacity and epoch, so each
// lane records its own balanced event stream on the shared time axis.
// Shard traces are exported as extra per-thread tracks
// (core::collect_rank_trace(shard, rank, lane)), not merged into the
// primary's ring.

#include <memory>
#include <vector>

#include "support/error.hpp"
#include "tau/registry.hpp"

namespace tau {

class RegistryShards {
 public:
  /// `lanes` counts the primary: lanes == 1 means no worker shards (the
  /// single-threaded configuration; merge_into_primary is then a no-op).
  RegistryShards(Registry& primary, int lanes) : primary_(primary) {
    CCAPERF_REQUIRE(lanes >= 1, "RegistryShards: need at least one lane");
    shards_.reserve(static_cast<std::size_t>(lanes - 1));
    for (int l = 1; l < lanes; ++l)
      shards_.push_back(std::make_unique<Registry>());
  }

  int lanes() const { return 1 + static_cast<int>(shards_.size()); }

  /// Lane 0 is the rank's primary registry; worker lanes get private
  /// shards. Each lane must only ever touch its own registry.
  Registry& shard(int lane) {
    CCAPERF_REQUIRE(lane >= 0 && lane < lanes(), "RegistryShards: bad lane");
    return lane == 0 ? primary_ : *shards_[static_cast<std::size_t>(lane - 1)];
  }

  const Registry& primary() const { return primary_; }

  /// Folds every worker shard's timers and events into the primary, in
  /// lane order, and resets the shards' accumulators. Must run with all
  /// lanes idle (the pool's region-end hook on the rank thread).
  void merge_into_primary() {
    for (std::unique_ptr<Registry>& s : shards_) {
      for (const TimerStats& row : s->drain()) primary_.absorb(row);
      if (!s->events().empty()) primary_.absorb_events(s->take_events());
    }
  }

  /// Mirrors the primary's tracing state onto the shards: same ring
  /// capacity, same epoch (so merged tracks share a time axis). Call
  /// after arming tracing on the primary; re-arming resets shard rings.
  void mirror_tracing() {
    for (std::unique_ptr<Registry>& s : shards_) {
      if (primary_.tracing()) {
        s->set_trace_capacity(primary_.trace().capacity());
        s->set_tracing_from_epoch(primary_.trace_epoch());
      } else if (s->tracing()) {
        s->set_tracing(false);
      }
    }
  }

 private:
  Registry& primary_;
  std::vector<std::unique_ptr<Registry>> shards_;
};

}  // namespace tau
