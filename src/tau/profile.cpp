#include "tau/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>

namespace tau {

namespace {

std::string with_commas(long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

std::string fmt_msec(double us) {
  return with_commas(static_cast<long long>(std::llround(us / 1000.0)));
}

std::string fmt_total_msec(double us) {
  const double msec = us / 1000.0;
  if (msec < 60'000.0) {
    if (msec >= 1000.0) return with_commas(static_cast<long long>(std::llround(msec)));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", msec);
    return buf;
  }
  const auto total_ms = static_cast<long long>(std::llround(msec));
  const long long minutes = total_ms / 60'000;
  const long long rem_ms = total_ms % 60'000;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld:%02lld.%03lld", minutes, rem_ms / 1000,
                rem_ms % 1000);
  return buf;
}

std::vector<ProfileRow> profile_rows(const Registry& reg) {
  std::vector<ProfileRow> rows;
  for (const TimerStats& t : reg.snapshot())
    rows.push_back(ProfileRow{t.name, t.exclusive_us, t.inclusive_us,
                              static_cast<double>(t.calls)});
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.inclusive_us > b.inclusive_us;
            });
  return rows;
}

std::vector<ProfileRow> mean_rows(const std::vector<std::vector<ProfileRow>>& per_rank) {
  std::map<std::string, ProfileRow> acc;
  for (const auto& rank_rows : per_rank) {
    for (const ProfileRow& r : rank_rows) {
      ProfileRow& a = acc[r.name];
      a.name = r.name;
      a.exclusive_us += r.exclusive_us;
      a.inclusive_us += r.inclusive_us;
      a.calls += r.calls;
    }
  }
  const double n = per_rank.empty() ? 1.0 : static_cast<double>(per_rank.size());
  std::vector<ProfileRow> rows;
  rows.reserve(acc.size());
  for (auto& [name, r] : acc) {
    r.exclusive_us /= n;
    r.inclusive_us /= n;
    r.calls /= n;
    rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.inclusive_us > b.inclusive_us;
            });
  return rows;
}

std::string write_profile_file(const std::string& dir, int rank,
                               const Registry& reg) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/profile.rank" + std::to_string(rank) + ".txt";
  std::ofstream os(path);
  write_function_summary(os, profile_rows(reg), "rank " + std::to_string(rank));
  return path;
}

void write_function_summary(std::ostream& os, const std::vector<ProfileRow>& rows,
                            const std::string& label) {
  os << "FUNCTION SUMMARY (" << label << "):\n";
  os << "%Time    Exclusive    Inclusive       #Call   Inclusive Name\n";
  os << "              msec   total msec                usec/call\n";
  os << "---------------------------------------------------------------------\n";
  double total = 0.0;
  for (const ProfileRow& r : rows) total = std::max(total, r.inclusive_us);
  if (total <= 0.0) total = 1.0;

  char buf[256];
  for (const ProfileRow& r : rows) {
    const double pct = 100.0 * r.inclusive_us / total;
    const double per_call_us = r.calls > 0 ? r.inclusive_us / r.calls : 0.0;
    std::string calls_str;
    if (std::abs(r.calls - std::round(r.calls)) < 1e-9) {
      calls_str = std::to_string(static_cast<long long>(std::llround(r.calls)));
    } else {
      char cbuf[32];
      std::snprintf(cbuf, sizeof cbuf, "%.2f", r.calls);
      calls_str = cbuf;
    }
    std::snprintf(buf, sizeof buf, "%5.1f %12s %12s %11s %11lld  %s\n", pct,
                  fmt_msec(r.exclusive_us).c_str(),
                  fmt_total_msec(r.inclusive_us).c_str(), calls_str.c_str(),
                  static_cast<long long>(std::llround(per_call_us)), r.name.c_str());
    os << buf;
  }
}

}  // namespace tau
