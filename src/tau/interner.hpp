#pragma once
// tau::NameInterner — the open-addressing string interner the Registry's
// timer table pioneered (FNV-1a, power-of-two buckets holding id+1, linear
// probing, load factor kept under 1/2), factored out so other dense-id
// tables can reuse it instead of growing their own linear scans:
//
//  * Registry::trace_string() interns slice-argument names and instant
//    labels (previously an O(strings) scan per call);
//  * core::TelemetryHub interns session names to dense SessionIds.
//
// The interner is deliberately *not* internally synchronized ("shard-safe"
// rather than thread-safe): a single-owner consumer (the per-rank
// Registry) pays no locking, and a shared consumer (the hub's session
// table) guards it with the same mutex that protects the id-indexed state
// the interner keys — one lock for both, no torn id/state views.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tau {

/// FNV-1a over the name bytes — cheap, allocation-free, good enough for
/// tables whose keys are dozens-to-thousands of distinct names.
inline std::uint64_t intern_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

class NameInterner {
 public:
  /// Dense id for `name`, interning it on first sight. Ids are assigned
  /// 0, 1, 2, ... in first-sight order and are stable forever.
  std::uint32_t intern(std::string_view name) {
    if (buckets_.empty()) rehash(64);
    std::size_t b = probe(name);
    if (buckets_[b] != 0) return buckets_[b] - 1;
    const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    // Keep load factor under 1/2 so probes stay short.
    if ((names_.size() + 1) * 2 > buckets_.size()) {
      rehash(buckets_.size() * 2);
      b = probe(name);
    }
    buckets_[b] = id + 1;
    return id;
  }

  /// Id of an already-interned name, or kNotFound.
  static constexpr std::uint32_t kNotFound = 0xffffffffu;
  std::uint32_t find(std::string_view name) const {
    if (buckets_.empty()) return kNotFound;
    const std::uint32_t v = buckets_[probe(name)];
    return v == 0 ? kNotFound : v - 1;
  }

  bool contains(std::string_view name) const { return find(name) != kNotFound; }

  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  /// Bucket holding `name`, or the empty bucket where it would insert.
  /// Requires a non-empty, non-full table.
  std::size_t probe(std::string_view name) const {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = static_cast<std::size_t>(intern_hash(name)) & mask;
    while (true) {
      const std::uint32_t v = buckets_[b];
      if (v == 0 || names_[v - 1] == name) return b;
      b = (b + 1) & mask;
    }
  }

  void rehash(std::size_t capacity) {
    buckets_.assign(capacity, 0);
    for (std::uint32_t id = 0; id < names_.size(); ++id)
      buckets_[probe(names_[id])] = id + 1;
  }

  std::vector<std::string> names_;
  std::vector<std::uint32_t> buckets_;  // id + 1; 0 = empty
};

}  // namespace tau
