#pragma once
// tau::Registry — the measurement core (our stand-in for the TAU library).
//
// Mirrors the capabilities the paper uses (Section 4.1):
//  * timing interface: create/name/start/stop/group timers; a per-rank
//    callstack yields aggregate *inclusive* and *exclusive* wall-clock time
//    per timer, plus call counts;
//  * event interface: named atomic events recording min/max/mean/stddev/N;
//  * timer control: enable/disable whole groups at runtime (e.g. all "MPI"
//    timers via their group identifier);
//  * query interface: mid-run snapshots of cumulative metrics — the
//    Mastermind differences two snapshots to attribute cost to a single
//    method invocation (Section 4.3);
//  * hardware counters: named sources registered from the hwc substrate,
//    included in every snapshot.
//
// Hot-path design (§3.2 requirement 2, non-intrusiveness): timer names are
// interned once through an open-addressing hash table (no per-call
// std::map node traffic), groups are interned to dense ids with a running
// per-group inclusive accumulator so group_inclusive_us() costs O(stack
// depth) instead of O(#timers), and snapshots can be taken incrementally —
// every timer carries a generation tag, so a consumer that differences
// before/after queries only touches the timers that actually fired in
// between (snapshot_delta), not the whole table.
//
// One Registry per rank; instances are NOT thread-safe by design (SCMD
// gives each rank thread its own, exactly like per-process TAU).

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "hwc/counters.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tau/interner.hpp"
#include "tau/trace_buffer.hpp"

namespace tau {

using TimerId = std::size_t;
using GroupId = std::size_t;
using Generation = std::uint64_t;
using Clock = std::chrono::steady_clock;

/// Default timer group (TAU's TAU_DEFAULT).
inline constexpr const char* kDefaultGroup = "TAU_DEFAULT";
/// Group used by the mpp hook adapter for message-passing timers.
inline constexpr const char* kMpiGroup = "MPI";

/// Cumulative data for one named timer.
struct TimerStats {
  std::string name;
  std::string group;
  std::uint64_t calls = 0;
  double inclusive_us = 0.0;  ///< time in timer + callees
  double exclusive_us = 0.0;  ///< time in timer minus instrumented callees
};

/// Atomic event: TAU records min/max/mean/stddev/count per event name.
using AtomicEvent = ccaperf::RunningStats;

/// Trace verbosity ladder (DESIGN.md §12). Ordered: every tier emits a
/// subset of the tier above it, so the OverheadGovernor can walk down the
/// ladder monotonically. `full` is the historical behavior and the default.
///  * full     — enter/exit slices + slice args + message endpoints +
///               counter samples + instants
///  * slices   — enter/exit only (args and messages dropped)
///  * counters — counter samples only (no slices)
///  * off      — instants only (the governor's own audit marks survive)
enum class TraceTier : int { full = 0, slices = 1, counters = 2, off = 3 };

/// Stable lowercase name for telemetry/JSON output.
const char* trace_tier_name(TraceTier t);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- timing interface ----------------------------------------------------

  /// Returns the id for `name`, creating the timer on first use. The group
  /// is fixed at creation; later calls may pass any group value. Interned:
  /// repeated lookups hash the name once, with no allocation.
  TimerId timer(std::string_view name, std::string_view group = kDefaultGroup);

  /// True if a timer with this exact name exists.
  bool has_timer(std::string_view name) const;

  void start(TimerId id);
  /// Stops the innermost running timer, which must be `id` (LIFO
  /// discipline). Returns the elapsed inclusive time of the activation
  /// just closed (whether or not the timer's group is enabled) — the
  /// Mastermind uses this as the invocation's wall time instead of taking
  /// two more clock readings of its own.
  double stop(TimerId id);

  /// Number of timers created.
  std::size_t num_timers() const { return timers_.size(); }
  /// Depth of the running-timer stack (0 when idle).
  std::size_t stack_depth() const { return stack_.size(); }

  // --- timer control ---------------------------------------------------------

  /// Enables/disables every timer in `group`, now and in the future.
  /// Disabled timers record nothing and their time folds into the nearest
  /// enabled ancestor's exclusive time (as if uninstrumented).
  void set_group_enabled(std::string_view group, bool enabled);
  bool group_enabled(std::string_view group) const;

  /// Dense id of a group, interning it on first use. Stable for the
  /// registry's lifetime; useful to hoist group queries out of hot loops.
  GroupId group_id(std::string_view group);

  /// Groups interned so far (telemetry walks them for per-group time).
  std::size_t num_groups() const { return groups_.size(); }
  const std::string& group_name(GroupId gid) const {
    CCAPERF_REQUIRE(gid < groups_.size(), "Registry: bad group id");
    return groups_[gid].name;
  }

  // --- event interface -------------------------------------------------------

  /// Records one sample of the named atomic event.
  void trigger(const std::string& event_name, double value);
  const std::map<std::string, AtomicEvent>& events() const { return events_; }

  // --- hardware counters -------------------------------------------------------

  hwc::CounterRegistry& counters() { return counters_; }
  const hwc::CounterRegistry& counters() const { return counters_; }

  // --- query interface ---------------------------------------------------------

  /// Cumulative inclusive time, *including* the partial elapsed time of
  /// currently-running activations (so mid-run queries are meaningful).
  double inclusive_us(TimerId id) const;
  /// Cumulative exclusive time with the running partial included.
  double exclusive_us(TimerId id) const;
  std::uint64_t calls(TimerId id) const { return stats_at(id).calls; }
  const TimerStats& stats_at(TimerId id) const {
    CCAPERF_REQUIRE(id < timers_.size(), "Registry: bad timer id");
    return timers_[id];
  }

  /// Sum of inclusive time over every timer in `group` (running partials
  /// included). Assumes group members do not nest within one another —
  /// true for the MPI wrappers, which is what the Mastermind queries.
  /// Maintained incrementally: O(stack depth), not O(#timers).
  double group_inclusive_us(std::string_view group) const;
  /// Same, by pre-interned id (the Mastermind hoists the lookup).
  double group_inclusive_us(GroupId gid) const;

  /// Full cumulative snapshot (rows for every timer, partials included).
  std::vector<TimerStats> snapshot() const;

  // --- incremental snapshots ---------------------------------------------------
  // Timers carry a generation tag stamped on every start/stop. A consumer
  // records generation() before a region of interest and asks
  // snapshot_delta() after: only timers that fired in between are touched
  // and returned — the before/after differencing of §4.3 without walking
  // the whole table. Windows nest (the Mastermind's LIFO monitoring opens
  // one per in-flight invocation); retire_generations_before() lets the
  // outermost consumer bound the change-log's memory.

  /// Current generation. Advances on the first timer activity after each
  /// snapshot_delta() call, so repeated idle queries are free.
  Generation generation() const { return gen_; }

  /// Cumulative rows (partials included) for exactly the timers that
  /// started or stopped at a generation >= `since`. Cost is proportional
  /// to the number of such timers.
  std::vector<TimerStats> snapshot_delta(Generation since) const;

  /// Drops change-log entries older than `g` (all outstanding windows must
  /// have been opened at generation >= g). Keeps long runs bounded.
  void retire_generations_before(Generation g);

  // --- shard merging -----------------------------------------------------------
  // Per-thread registry shards (tau::RegistryShards, DESIGN.md §9) fold
  // their accumulated stats into the rank's primary registry at region
  // barriers. Folding is plain addition in a fixed order, so the merged
  // view is deterministic and the generation/touch machinery sees the
  // absorbed timers exactly as if they had fired here.

  /// Folds one completed-stats row into this registry: the timer is
  /// created on first sight (keeping the row's group), its calls and
  /// inclusive/exclusive sums are added, the per-group accumulator is
  /// advanced, and the timer is touched so snapshot_delta/telemetry
  /// consumers see the merge. Rows with no activity are ignored.
  void absorb(const TimerStats& row);

  /// Folds another registry's atomic events into this one's
  /// (ccaperf::RunningStats::merge per event name).
  void absorb_events(const std::map<std::string, AtomicEvent>& events);

  /// Returns the rows with any accumulated activity and zeroes every
  /// timer's stats and every group accumulator (interned names and ids
  /// survive, so re-use after a drain stays allocation-free). The timer
  /// stack must be empty — shards are only drained between regions.
  std::vector<TimerStats> drain();

  /// Moves the atomic events out (the map is left empty).
  std::map<std::string, AtomicEvent> take_events();

 private:
  struct Frame {
    TimerId id;
    Clock::time_point start;
    double child_us = 0.0;  ///< time of enabled instrumented callees
    bool enabled = true;
    bool traced = false;  ///< an enter event is open for this frame
  };

  struct Group {
    std::string name;
    bool enabled = true;
    double inclusive_us = 0.0;  ///< completed outermost activations
    TraceTier tier = TraceTier::full;
    bool slices_ok = true;  ///< cached `tier <= slices` for the hot path
  };

  double now_partial_inclusive(TimerId id) const;
  GroupId intern_group(std::string_view group);
  const Group* find_group(std::string_view group) const;
  void touch(TimerId id);

  // Open-addressing interner over timer names: buckets hold id+1 (0 =
  // empty); names live in timers_. Power-of-two capacity, linear probing.
  std::size_t probe_name(std::string_view name) const;
  void rehash_names(std::size_t capacity);

  std::vector<TimerStats> timers_;
  std::vector<std::uint64_t> active_depth_;  // per timer
  std::vector<GroupId> timer_group_;         // per timer
  std::vector<Generation> timer_gen_;        // per timer: last start/stop
  std::vector<std::uint32_t> name_buckets_;  // interner table, id+1
  std::vector<Group> groups_;
  std::vector<Frame> stack_;
  std::map<std::string, AtomicEvent> events_;
  hwc::CounterRegistry counters_;
  std::vector<std::uint64_t> counters_scratch_;  // trace_counter_samples()

  // Incremental-snapshot change log: (generation, timer) appended on the
  // first touch of a timer in each generation, oldest first.
  struct Touch {
    Generation gen;
    TimerId id;
  };
  mutable Generation gen_ = 1;
  mutable bool gen_dirty_ = false;  ///< activity since the last snapshot_delta
  std::vector<Touch> touch_log_;
  std::size_t touch_head_ = 0;  ///< retired prefix of touch_log_

  // --- tracing interface -------------------------------------------------------
  // "The TAU implementation of this generic performance component
  // interface supports both profiling and tracing measurement options"
  // (§4.1). When tracing is enabled every start/stop of an *enabled*
  // timer appends a compact event to a bounded ring (tau::TraceBuffer) —
  // plus message endpoints, counter samples and slice arguments pushed by
  // the hook adapter / Mastermind. Traces stay balanced at the edges:
  // enabling tracing emits synthetic enter events (at the epoch) for
  // activations already open, disabling it emits synthetic closing exits,
  // and dump_trace/snapshot_trace close activations still running.

 public:
  /// Enables/disables event tracing (disabled by default). Enabling resets
  /// the trace and its epoch and emits synthetic enter events for every
  /// enabled activation currently on the timer stack; disabling emits
  /// synthetic exits for those still open, keeping the buffer balanced.
  void set_tracing(bool enabled);
  bool tracing() const { return tracing_; }

  /// Like set_tracing(true), but with a caller-provided epoch: per-thread
  /// shard registries adopt the primary's epoch so their tracks line up
  /// on the same time axis when merged (core::TraceMerger).
  void set_tracing_from_epoch(Clock::time_point epoch);

  /// Bound of the trace ring in events (0 = unbounded legacy vector mode).
  /// Resets the trace.
  void set_trace_capacity(std::size_t events);

  // --- trace tiers (governor actuation, DESIGN.md §12) -----------------------
  // Verbosity can be throttled without toggling tracing itself: slices are
  // gated per timer group (a mid-frame transition emits balanced synthetic
  // exit/enter events so the stream never unbalances), while slice args,
  // messages and counter samples are gated on the registry-wide tier.
  // Instants always record while tracing — the governor's own audit marks
  // must survive `off`. Defaults (`full`) reproduce historical behavior
  // exactly.

  /// Sets the registry-wide trace tier and every group's tier.
  void set_trace_tier(TraceTier t);
  /// Sets one group's slice tier (registry-wide gates are unaffected).
  void set_group_trace_tier(GroupId gid, TraceTier t);
  TraceTier trace_tier() const { return trace_tier_; }
  TraceTier group_trace_tier(GroupId gid) const {
    CCAPERF_REQUIRE(gid < groups_.size(), "Registry: bad group id");
    return groups_[gid].tier;
  }

  const TraceBuffer& trace() const { return trace_; }
  /// Steady-clock instant of trace time 0 (cross-rank merge alignment).
  Clock::time_point trace_epoch() const { return trace_epoch_; }

  /// Appends a message endpoint event (kind msg_send / msg_recv). `peer`
  /// is the other endpoint's world rank, `seq` the fabric's per-(src,dst)
  /// sequence number. No-op unless tracing.
  void trace_message(bool send, int peer, int tag, std::uint64_t bytes,
                     std::uint64_t seq);

  /// Samples every registered hardware counter into the trace (one counter
  /// record each, id = counter index). No-op unless tracing.
  void trace_counter_samples();

  /// Interns an auxiliary trace string (slice-argument names, instant
  /// labels); returns its stable index. Safe to call when not tracing.
  /// Hashed through the shared tau::NameInterner, so a label can be
  /// re-resolved every emission without an O(strings) scan.
  std::uint32_t trace_string(std::string_view s) { return trace_strings_.intern(s); }
  const std::vector<std::string>& trace_strings() const {
    return trace_strings_.names();
  }

  /// Attaches (name, value) as the slice argument of the most recent enter
  /// event (e.g. the monitored method's Q). No-op unless that event is
  /// still in the buffer.
  void trace_arg(std::uint32_t name_string, double value);

  /// Appends an instant annotation (id = trace-string index).
  void trace_instant(std::uint32_t name_string);

  /// Copy of the retained events plus synthetic closing exits for
  /// activations still open — always balanced, ready for export.
  std::vector<TraceRecord> snapshot_trace() const;

  /// Writes the trace as tab-separated lines (`t_us<TAB>kind<TAB>...`),
  /// unambiguous for timer names containing spaces, with synthetic closing
  /// exits appended for activations still open.
  void dump_trace(std::ostream& os) const;

 private:
  void trace_push_open_frames(bool as_exit);
  /// Emits balanced synthetic events when a group's slice gating flips
  /// mid-frame: closing exits (innermost first) on disable, catch-up enters
  /// (outermost first, at the current trace time) on enable.
  void trace_rebalance_group(GroupId gid, bool enable);

  bool tracing_ = false;
  TraceTier trace_tier_ = TraceTier::full;
  Clock::time_point trace_epoch_{};
  TraceBuffer trace_;
  NameInterner trace_strings_;
};

/// RAII start/stop.
class ScopedTimer {
 public:
  ScopedTimer(Registry& reg, TimerId id) : reg_(reg), id_(id) { reg_.start(id_); }
  ~ScopedTimer() { reg_.stop(id_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& reg_;
  TimerId id_;
};

}  // namespace tau
