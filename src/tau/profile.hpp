#pragma once
// FUNCTION SUMMARY profile emission (the paper's Fig. 3 format).
//
// TAU "dumps out summary profile files at program termination"; Fig. 3
// shows the mean-over-ranks summary for the case study. `ProfileRow` is
// one line; writers render a single rank's profile or the mean across
// ranks in the same layout:
//
//   FUNCTION SUMMARY (mean):
//   %Time  Exclusive  Inclusive  #Call  Inclusive  Name
//          msec       total msec        usec/call
//   ...

#include <iosfwd>
#include <string>
#include <vector>

#include "tau/registry.hpp"

namespace tau {

struct ProfileRow {
  std::string name;
  double exclusive_us = 0.0;
  double inclusive_us = 0.0;
  double calls = 0.0;  ///< fractional when averaged over ranks
};

/// Rows for one registry (cumulative, running partials included), sorted
/// by inclusive time descending.
std::vector<ProfileRow> profile_rows(const Registry& reg);

/// Element-wise mean over per-rank row sets, keyed by timer name; timers
/// missing on some ranks contribute zero there (TAU's convention).
/// The result is sorted by inclusive time descending.
std::vector<ProfileRow> mean_rows(const std::vector<std::vector<ProfileRow>>& per_rank);

/// Renders the Fig. 3 FUNCTION SUMMARY. `label` is interpolated into the
/// header, e.g. "mean" or "rank 0". %Time is relative to the largest
/// inclusive time in `rows` (the root, e.g. "int main(int, char **)").
void write_function_summary(std::ostream& os, const std::vector<ProfileRow>& rows,
                            const std::string& label);

/// "The TAU library also dumps out summary profile files at program
/// termination": writes `<dir>/profile.rank<r>.txt` with this rank's
/// FUNCTION SUMMARY (creating `dir` if needed). Returns the path.
std::string write_profile_file(const std::string& dir, int rank,
                               const Registry& reg);

/// Formats microseconds as the summary's "total msec" column: msec with
/// thousands separators, switching to m:ss.mmm above one minute (Fig. 3
/// shows "1:52.032" for the root).
std::string fmt_total_msec(double us);
/// Millisecond column with thousands separators ("27,262").
std::string fmt_msec(double us);

}  // namespace tau
