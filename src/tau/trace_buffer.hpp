#pragma once
// tau::TraceBuffer — the bounded flight recorder behind the Registry's
// tracing measurement option ("The TAU implementation ... supports both
// profiling and tracing measurement options", paper §4.1).
//
// The seed's trace was an unbounded std::vector of (t, id, enter) tuples:
// fine for unit tests, fatal for the ROADMAP's production-scale runs where
// a rank emits millions of events per second. The buffer here is a
// fixed-capacity ring of compact binary records (40 B, trivially
// copyable): pushes never allocate after the first, the oldest events are
// overwritten when the ring is full (flight-recorder semantics — the most
// recent window survives), and every overwrite is counted so consumers can
// report exactly how much history was lost.
//
// One record type carries five event kinds:
//   enter/exit — timer activations (id = TimerId);
//   instant    — point annotations (id = trace-string index);
//   counter    — hardware-counter samples (id = counter index, value());
//   msg_send/msg_recv — point-to-point message endpoints carrying
//     (peer world rank, tag, bytes, per-(src,dst) sequence number), the
//     key the cross-rank merger uses to draw deterministic flow arrows.
//
// Capacity 0 selects the legacy unbounded-vector behaviour; it exists for
// the trace-overhead ablation and for short tests that must not drop.

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace tau {

enum class TraceKind : std::uint8_t {
  enter = 0,
  exit = 1,
  instant = 2,
  counter = 3,
  msg_send = 4,
  msg_recv = 5,
};

/// One compact binary trace event. Field meaning depends on `kind`; unused
/// fields stay at their defaults so records compare deterministically.
struct TraceRecord {
  double t_us = 0.0;        ///< microseconds since the trace epoch
  std::uint64_t payload = 0;  ///< msg: bytes; counter/arg: value bit pattern
  std::uint64_t seq = 0;    ///< msg: per-(src,dst) sequence number (1-based)
  std::uint32_t id = 0;     ///< enter/exit: TimerId; counter: counter index;
                            ///< instant: trace-string index
  std::int32_t peer = -1;   ///< msg: the other endpoint's world rank
  std::int32_t tag = 0;     ///< msg: tag; enter with kHasArg: arg-name string
  TraceKind kind = TraceKind::enter;
  std::uint8_t flags = 0;

  /// Event fabricated for balance (enter at epoch for an activation already
  /// open when tracing started, exit for one still open when it stopped).
  static constexpr std::uint8_t kSynthetic = 1;
  /// Enter record carries a slice argument: name trace-string in `tag`,
  /// value bits in `payload` (e.g. the monitored method's Q).
  static constexpr std::uint8_t kHasArg = 2;

  bool is_enter() const { return kind == TraceKind::enter; }
  bool is_exit() const { return kind == TraceKind::exit; }
  bool synthetic() const { return (flags & kSynthetic) != 0; }
  bool has_arg() const { return (flags & kHasArg) != 0; }

  double value() const { return std::bit_cast<double>(payload); }
  void set_value(double v) { payload = std::bit_cast<std::uint64_t>(v); }
};

static_assert(sizeof(TraceRecord) == 40, "trace records must stay compact");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "trace records are raw-copied into snapshots");

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;  // 2.5 MiB/rank

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Configured bound in events (0 = unbounded legacy mode). Changing the
  /// capacity clears the buffer.
  void set_capacity(std::size_t events) {
    capacity_ = events;
    ring_.clear();
    ring_.shrink_to_fit();
    head_ = 0;
    total_ = 0;
  }
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  /// Events ever pushed (retained + dropped).
  std::uint64_t total() const { return total_; }
  /// Oldest events overwritten because the ring was full.
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  /// Bytes held by the ring storage (stays at the configured bound).
  std::size_t memory_bytes() const { return ring_.capacity() * sizeof(TraceRecord); }

  void clear() {
    ring_.clear();
    head_ = 0;
    total_ = 0;
  }

  void push(const TraceRecord& r) {
    ++total_;
    if (capacity_ == 0) {  // legacy unbounded mode (ablation baseline)
      ring_.push_back(r);
      return;
    }
    if (ring_.size() < capacity_) {
      if (ring_.capacity() == 0) ring_.reserve(capacity_);
      ring_.push_back(r);
      return;
    }
    ring_[head_] = r;  // overwrite the oldest retained event
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }

  /// i-th retained event, 0 = oldest.
  const TraceRecord& operator[](std::size_t i) const {
    const std::size_t at = head_ + i;
    return ring_[at >= ring_.size() ? at - ring_.size() : at];
  }

  /// Newest record, if any (nullptr when empty). Mutable so an argument can
  /// be attached to a just-pushed enter event.
  TraceRecord* back() {
    if (ring_.empty()) return nullptr;
    return &ring_[head_ == 0 ? ring_.size() - 1 : head_ - 1];
  }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::uint64_t total_ = 0;
};

}  // namespace tau
