#pragma once
// mpp::Comm — the communicator API of the in-process message-passing
// runtime. It mirrors the MPI-1 subset the paper's application uses
// (CCAFFEINE "adheres to the MPI-1 standard"): nonblocking point-to-point
// with Waitsome/Waitall, blocking send/recv, and the usual collectives.
//
// Typed operations are thin templates over a byte-level core; payload types
// must be trivially copyable. All entry points are bracketed with
// PMPI-style hooks (see hooks.hpp) so the TAU adapter can time them under
// the "MPI" group exactly as the paper's measurement system does.

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "mpp/fabric.hpp"
#include "mpp/hooks.hpp"
#include "support/error.hpp"

namespace mpp {

/// Handle to a nonblocking operation. Move-only: exactly one live handle
/// per operation, so dropping a pending receive cancels it deterministically.
/// Completion consumes the handle (MPI-style request deallocation).
class Request {
 public:
  Request() = default;

  /// True if this handle refers to an operation (complete or not).
  bool valid() const { return static_cast<bool>(state_); }

  /// Non-consuming completion check.
  bool done() const { return state_ && state_->ready(); }

  /// Blocks until completion; returns the Status and invalidates the
  /// handle. Hook name: "MPI_Wait()".
  Status wait();

  /// If complete, returns the Status and invalidates the handle.
  std::optional<Status> test();

  ~Request() { release(); }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&& o) noexcept {
    if (this != &o) {
      release();
      state_ = std::move(o.state_);
    }
    return *this;
  }

 private:
  friend class Comm;
  friend std::size_t wait_some(std::span<Request>, std::vector<int>&, std::vector<Status>*);
  friend void wait_all(std::span<Request>);

  explicit Request(std::shared_ptr<detail::ReqState> st) : state_(std::move(st)) {}

  Status wait_no_hook();
  /// Cancels a still-posted receive when the last handle is dropped.
  void release();

  std::shared_ptr<detail::ReqState> state_;
};

/// MPI_Waitsome: blocks until at least one *valid* request in `reqs`
/// completes; completed requests are invalidated and their indices appended
/// to `indices` (cleared first). Returns the number completed; returns 0
/// immediately iff no request is valid. Hook name: "MPI_Waitsome()".
std::size_t wait_some(std::span<Request> reqs, std::vector<int>& indices,
                      std::vector<Status>* statuses = nullptr);

/// MPI_Waitall over the valid requests. Hook name: "MPI_Waitall()".
void wait_all(std::span<Request> reqs);

/// Reduction functors for typed allreduce/reduce.
template <class T>
struct MinOp {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};
template <class T>
struct MaxOp {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

/// Communicator: a group of ranks plus a matching context. Lightweight
/// value type (copy = alias).
class Comm {
 public:
  Comm() = default;  ///< invalid communicator

  bool valid() const { return fabric_ != nullptr; }
  int rank() const { return group_rank_; }
  int size() const { return static_cast<int>(members_->size()); }
  /// World rank of group rank `r` (identity on the world communicator).
  int world_rank_of(int r) const { return (*members_)[static_cast<std::size_t>(r)]; }

  /// High-resolution wall clock, seconds since runtime start ("MPI_Wtime()").
  double wtime() const;

  /// Introspection for tests/benches (not part of the MPI surface):
  /// payload buffer-pool statistics of the underlying fabric.
  detail::BufferPool::Stats pool_stats() const { return fabric_->pool().stats(); }

  /// Fault/recovery accounting of the underlying fabric (see fault.hpp).
  FaultStats fault_stats() const { return fabric_->fault_stats(); }

  /// Records one stale-ghost degradation (amr::exchange gave up waiting and
  /// reused old ghost data): counted on the fabric and reported to this
  /// rank's hooks with the number of ghost segments left stale.
  void report_stale_fallback(std::size_t segments);

  /// MPI_Comm_dup: same group, fresh matching context (collective).
  Comm dup() const;
  /// MPI_Comm_split: subgroups by color, ordered by (key, rank) (collective).
  Comm split(int color, int key) const;

  // --- point to point (byte level) ---------------------------------------
  Request isend_bytes(const void* data, std::size_t bytes, int dest, int tag);
  Request irecv_bytes(void* buffer, std::size_t capacity, int src, int tag);
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag);
  Status recv_bytes(void* buffer, std::size_t capacity, int src, int tag);

  // --- point to point (typed) --------------------------------------------
  template <class T>
  Request isend(std::span<const T> data, int dest, int tag) {
    check_pod<T>();
    return isend_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <class T>
  Request irecv(std::span<T> buffer, int src, int tag) {
    check_pod<T>();
    return irecv_bytes(buffer.data(), buffer.size_bytes(), src, tag);
  }
  template <class T>
  void send(std::span<const T> data, int dest, int tag) {
    check_pod<T>();
    send_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <class T>
  Status recv(std::span<T> buffer, int src, int tag) {
    check_pod<T>();
    return recv_bytes(buffer.data(), buffer.size_bytes(), src, tag);
  }

  // --- collectives ---------------------------------------------------------
  void barrier();

  template <class T>
  void bcast(std::span<T> data, int root) {
    check_pod<T>();
    bcast_bytes(data.data(), data.size_bytes(), root);
  }

  /// Element-wise combine function over type-erased arrays.
  using CombineFn = void (*)(void* acc, const void* in, std::size_t count);

  void bcast_bytes(void* data, std::size_t bytes, int root);
  void allreduce_bytes(const void* in, void* out, std::size_t elem_bytes,
                       std::size_t count, CombineFn combine);
  void reduce_bytes(const void* in, void* out, std::size_t elem_bytes,
                    std::size_t count, CombineFn combine, int root);
  void allgather_bytes(const void* in, std::size_t chunk_bytes, void* out);
  void gather_bytes(const void* in, std::size_t chunk_bytes, void* out, int root);
  void allgatherv_bytes(const void* in, std::size_t my_bytes, void* out,
                        std::span<const std::size_t> byte_counts);
  void alltoall_bytes(const void* in, std::size_t chunk_bytes, void* out);

  /// Reference single-rendezvous (CollectiveBay) implementations of the
  /// tree collectives above. Byte-identical results and hook names; kept
  /// for equivalence tests and the flat-vs-tree ablation in
  /// bench_ablation_ranks, not for production call sites.
  void barrier_flat();
  void allgather_bytes_flat(const void* in, std::size_t chunk_bytes, void* out);
  void allgatherv_bytes_flat(const void* in, std::size_t my_bytes, void* out,
                             std::span<const std::size_t> byte_counts);

  template <class T, class Op = std::plus<T>>
  void allreduce(std::span<const T> in, std::span<T> out) {
    check_pod<T>();
    CCAPERF_REQUIRE(in.size() == out.size(), "allreduce: size mismatch");
    allreduce_bytes(in.data(), out.data(), sizeof(T), in.size(), &combine_fn<T, Op>);
  }
  /// Convenience scalar allreduce.
  template <class Op = std::plus<double>, class T = double>
  T allreduce_value(T v) {
    check_pod<T>();
    T out{};
    allreduce_bytes(&v, &out, sizeof(T), 1, &combine_fn<T, Op>);
    return out;
  }
  template <class T, class Op = std::plus<T>>
  void reduce(std::span<const T> in, std::span<T> out, int root) {
    check_pod<T>();
    CCAPERF_REQUIRE(rank() != root || in.size() == out.size(), "reduce: size mismatch");
    reduce_bytes(in.data(), out.data(), sizeof(T), in.size(), &combine_fn<T, Op>, root);
  }
  template <class T>
  void allgather(std::span<const T> in, std::span<T> out) {
    check_pod<T>();
    CCAPERF_REQUIRE(out.size() == in.size() * static_cast<std::size_t>(size()),
                    "allgather: output must hold size()*chunk elements");
    allgather_bytes(in.data(), in.size_bytes(), out.data());
  }
  template <class T>
  void gather(std::span<const T> in, std::span<T> out, int root) {
    check_pod<T>();
    gather_bytes(in.data(), in.size_bytes(), rank() == root ? out.data() : nullptr, root);
  }
  template <class T>
  void allgatherv(std::span<const T> in, std::span<T> out,
                  std::span<const std::size_t> elem_counts) {
    check_pod<T>();
    std::vector<std::size_t> bytes(elem_counts.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = elem_counts[i] * sizeof(T);
    allgatherv_bytes(in.data(), in.size_bytes(), out.data(), bytes);
  }
  template <class T>
  void alltoall(std::span<const T> in, std::span<T> out) {
    check_pod<T>();
    CCAPERF_REQUIRE(in.size() == out.size() &&
                        in.size() % static_cast<std::size_t>(size()) == 0,
                    "alltoall: size()*chunk elements required");
    alltoall_bytes(in.data(), in.size_bytes() / static_cast<std::size_t>(size()),
                   out.data());
  }

 private:
  friend class Runtime;

  Comm(Fabric* fabric, std::uint64_t context,
       std::shared_ptr<const std::vector<int>> members, int group_rank)
      : fabric_(fabric), context_(context), members_(std::move(members)),
        group_rank_(group_rank) {}

  template <class T>
  static void check_pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "mpp payloads must be trivially copyable");
  }

  template <class T, class Op>
  static void combine_fn(void* acc, const void* in, std::size_t count) {
    static_assert(std::is_empty_v<Op>, "reduction ops must be stateless");
    T* a = static_cast<T*>(acc);
    const T* b = static_cast<const T*>(in);
    Op op{};
    for (std::size_t i = 0; i < count; ++i) a[i] = op(a[i], b[i]);
  }

  int my_world_rank() const { return world_rank_of(group_rank_); }

  /// Routes `bytes` to `dest`'s mailbox: matches a posted receive (one
  /// direct copy), else parks a pooled eager copy (small messages) or a
  /// zero-copy rendezvous descriptor holding `sender` (large messages).
  /// Completes `sender` on the eager paths; rendezvous leaves it pending.
  void deliver(int dest, int tag, const void* data, std::size_t bytes,
               const std::shared_ptr<detail::ReqState>& sender);
  /// The fault-injecting twin of `deliver`, taken when a FaultPlan is
  /// active: always stages a pooled copy, asks the plan for a decision, and
  /// routes/holds/loses the message accordingly. Rendezvous-class messages
  /// keep `sender` attached so the match acknowledges the send and a
  /// retry-exhausted drop can fail it.
  void deliver_faulty(int dest, int tag, const void* data, std::size_t bytes,
                      const std::shared_ptr<detail::ReqState>& sender);
  /// Builds the ReqState every send variant shares.
  std::shared_ptr<detail::ReqState> make_send_state(int tag, std::size_t bytes);

  /// One hop of a tree collective: deposits `bytes` into `dest_group`'s
  /// HopSlot under (gen, round) and reports it to on_collective_hop.
  /// Never blocks (early arrivals buffer in the slot).
  void hop_send(int dest_group, std::uint64_t gen, int round, const void* data,
                std::size_t bytes, const char* op) const;
  /// Blocks until this rank's HopSlot holds (gen, round); returns the
  /// payload (pool-backed when non-empty). Throws CommErrc::aborted if the
  /// fabric dies while waiting.
  std::vector<std::byte> hop_recv(std::uint64_t gen, int round,
                                  const char* op) const;

  /// Generic arrive/compute/depart collective. `deposit(bay, first)` adds
  /// this rank's contribution under the bay lock; `collect(bay)` copies the
  /// result out under the lock. `delay_bytes` drives the modeled per-rank
  /// network cost applied on exit.
  void collective(std::size_t scratch_bytes,
                  const std::function<void(detail::CollectiveBay&, bool)>& deposit,
                  const std::function<void(detail::CollectiveBay&)>& collect,
                  std::size_t delay_bytes) const;

  Fabric* fabric_ = nullptr;
  std::uint64_t context_ = 0;
  std::shared_ptr<const std::vector<int>> members_;
  int group_rank_ = -1;
};

}  // namespace mpp
