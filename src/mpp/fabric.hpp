#pragma once
// The Fabric is the shared-memory "interconnect" behind mpp::Comm.
//
// Design (see DESIGN.md, src/mpp):
//  * Ranks are threads. Each communicator context owns one `Mailbox` per
//    group rank, holding a queue of posted receives and a queue of
//    unexpected messages (standard MPI matching structure).
//  * Small sends are buffered-eager: the payload is copied at the send
//    call into a slab from the fabric's BufferPool, a modeled delivery time
//    is stamped (NetworkModel), and the send request completes immediately.
//    Matching happens at send time if a receive is posted, otherwise the
//    message parks in the unexpected queue; the matching receive returns
//    the slab to the pool, so steady-state traffic allocates nothing.
//  * Sends of kRendezvousBytes or more that find no posted receive take a
//    rendezvous path instead: a zero-copy descriptor (pointer to the
//    sender's buffer + the sender's request) parks in the unexpected queue
//    and the send request stays incomplete until the matching receive
//    copies once, sender buffer -> receive buffer. This halves the copy
//    cost of large messages and bounds the staging memory.
//  * Receive requests complete when (a) matched and (b) the modeled
//    delivery time has passed; waits sleep until then, which is how network
//    cost becomes visible wall-clock time in profiles.
//  * Matching preserves MPI's non-overtaking order per (source, tag).
//  * Collectives run through a per-context `CollectiveBay` using an
//    arrive/compute/depart generation protocol; an optional modeled delay
//    is applied per rank on exit.
//
// The Fabric is internal; user code talks to mpp::Comm / mpp::Runtime.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mpp/netmodel.hpp"
#include "support/rng.hpp"

namespace mpp {

/// Wildcards (match MPI semantics).
inline constexpr int any_source = -1;
inline constexpr int any_tag = -1;

/// Completion information for a receive.
struct Status {
  int source = any_source;      ///< group rank of the sender
  int tag = any_tag;            ///< message tag
  std::size_t bytes = 0;        ///< payload size in bytes
};

using Clock = std::chrono::steady_clock;

namespace detail {

class Mailbox;

/// Shared state behind a Request handle.
struct ReqState {
  enum class Kind { send, recv };
  Kind kind = Kind::send;
  /// Set (release) once the message is matched and copied. For sends this
  /// is set before the request is returned.
  std::atomic<bool> matched{false};
  /// Delivery time; completion is gated on Clock::now() >= deliver_at.
  Clock::time_point deliver_at{};
  Status status;
  /// Message identity for hook/trace reporting: world ranks of the two
  /// endpoints and the per-(src,dst) sequence number. Stamped by the
  /// sender before `matched` is released; src_world < 0 means "no message
  /// attached yet" (e.g. an unmatched receive).
  int src_world = -1;
  int dst_world = -1;
  std::uint64_t seq = 0;
  /// Identity of the posted receive inside its mailbox (for cancellation).
  std::uint64_t post_id = 0;
  Mailbox* mailbox = nullptr;           ///< mailbox the recv was posted to
  class RankSignal* signal = nullptr;   ///< wakeup channel of the owning rank
  const std::atomic<bool>* abort_flag = nullptr;  ///< fabric-wide failure flag

  bool aborted() const {
    return abort_flag && abort_flag->load(std::memory_order_acquire);
  }

  /// True when the request is complete *now*.
  bool ready() const {
    return matched.load(std::memory_order_acquire) && Clock::now() >= deliver_at;
  }
  /// True when matched but delivery time is still in the future.
  bool pending_delivery() const {
    return matched.load(std::memory_order_acquire) && Clock::now() < deliver_at;
  }
};

/// A message parked in the unexpected queue. Two flavours share the slot:
/// eager (payload holds a pooled copy of the data) and rendezvous
/// (`rdv_send` is set; `rdv_data`/`rdv_bytes` point into the sender's
/// still-live buffer and the sender's request completes only when a
/// receive matches). Both flavours queue in send order, so matching stays
/// non-overtaking per (source, tag) regardless of message size.
struct ParkedMessage {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  Clock::time_point deliver_at{};
  int src_world = -1;         ///< message identity (see ReqState)
  int dst_world = -1;
  std::uint64_t seq = 0;
  const std::byte* rdv_data = nullptr;
  std::size_t rdv_bytes = 0;
  std::shared_ptr<ReqState> rdv_send;
  std::uint64_t park_id = 0;  ///< cancellation identity (rendezvous only)
};

/// Size-classed free list of message payload slabs (pow2 classes, 64 B up
/// to the rendezvous cutoff). Thread-safe; a leaf lock — never held while
/// taking another fabric lock.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from a free list
    std::uint64_t releases = 0;  ///< slabs handed back
    std::uint64_t discards = 0;  ///< handed-back slabs dropped (no class/full)
  };

  /// Returns a slab resized to exactly `bytes` (capacity may be larger).
  std::vector<std::byte> acquire(std::size_t bytes);
  /// Hands a slab back for reuse (freed if it fits no class or the class
  /// free list is full).
  void release(std::vector<std::byte>&& slab);
  Stats stats() const;

 private:
  static constexpr std::size_t kMinClassLog2 = 6;   // 64 B
  static constexpr std::size_t kMaxClassLog2 = 16;  // 64 KiB: rendezvous cutoff
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr std::size_t kMaxFreePerClass = 64;

  static int acquire_class(std::size_t bytes);     // smallest class holding bytes
  static int release_class(std::size_t capacity);  // largest class within capacity

  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_[kClasses];
  Stats stats_;
};

/// A receive posted before its message arrived.
struct PostedRecv {
  int src = any_source;
  int tag = any_tag;
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;
  std::uint64_t post_id = 0;
  std::shared_ptr<ReqState> state;
};

/// Per-rank wakeup channel: every completion that might unblock rank r
/// notifies r's signal. Waits (wait/wait_all/wait_some) block here.
class RankSignal {
 public:
  std::mutex mu;
  std::condition_variable cv;
  void notify() {
    std::scoped_lock lock(mu);
    cv.notify_all();
  }
};

/// Matching queues for one (context, group-rank).
class Mailbox {
 public:
  std::mutex mu;
  std::deque<ParkedMessage> unexpected;
  std::deque<PostedRecv> posted;
  std::uint64_t next_post_id = 1;
};

/// Shared-memory collective rendezvous for one communicator context.
class CollectiveBay {
 public:
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  int departed = 0;
  bool complete = false;
  std::uint64_t generation = 0;
  /// Scratch shared by the participating ranks; layout is op-specific.
  std::vector<std::byte> scratch;
  /// Op-agreed value published by the first/root arriver (context ids...).
  std::uint64_t agreed_u64 = 0;
};

}  // namespace detail

/// The interconnect. One Fabric per Runtime::run invocation.
class Fabric {
 public:
  Fabric(int world_size, NetworkModel net);

  int world_size() const { return world_size_; }
  const NetworkModel& net() const { return net_; }

  double wtime_seconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Modeled delay for `bytes` charged to sending world-rank `world_rank`.
  double delay_us(int world_rank, std::size_t bytes) {
    if (net_.is_null()) return 0.0;
    return net_.delay_us(bytes, rngs_[static_cast<std::size_t>(world_rank)]);
  }

  /// Next per-(src,dst) point-to-point sequence number (1-based, send
  /// order). Ranks are single threads, so sends for a given ordered pair
  /// are already serialized; the atomic makes cross-pair access safe.
  std::uint64_t next_pair_seq(int src_world, int dst_world) {
    auto& c = pair_seq_[static_cast<std::size_t>(src_world) *
                            static_cast<std::size_t>(world_size_) +
                        static_cast<std::size_t>(dst_world)];
    return c.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Allocates a fresh communicator context id (thread-safe).
  std::uint64_t allocate_context();

  /// Reserves `n` consecutive context ids, returning the first.
  std::uint64_t allocate_context_block(std::size_t n) {
    return next_context_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Ensures matching/collective structures exist for `context` with
  /// `group_size` members. Idempotent; thread-safe.
  void ensure_context(std::uint64_t context, int group_size);

  detail::Mailbox& mailbox(std::uint64_t context, int group_rank);
  detail::CollectiveBay& bay(std::uint64_t context);
  detail::BufferPool& pool() { return pool_; }
  detail::RankSignal& signal(int world_rank) {
    return *signals_[static_cast<std::size_t>(world_rank)];
  }

  /// Marks the fabric dead and wakes every blocked wait/collective so rank
  /// failures propagate instead of deadlocking the remaining ranks.
  void abort();
  bool is_aborted() const { return aborted_.load(std::memory_order_acquire); }
  const std::atomic<bool>* abort_flag() const { return &aborted_; }

  /// Context id of the world communicator.
  static constexpr std::uint64_t world_context = 0;

  /// Unmatched sends of at least this many bytes take the rendezvous path
  /// (single copy, send completes at match time) instead of the
  /// buffered-eager path (pooled staging copy, send completes immediately).
  static constexpr std::size_t kRendezvousBytes = 64 * 1024;

 private:
  struct ContextState {
    std::vector<std::unique_ptr<detail::Mailbox>> mailboxes;
    std::unique_ptr<detail::CollectiveBay> bay;
  };

  int world_size_;
  NetworkModel net_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<ccaperf::Rng> rngs_;  // one jitter stream per world rank
  std::vector<std::unique_ptr<detail::RankSignal>> signals_;
  /// world_size^2 ordered-pair message counters (row = src, col = dst).
  std::unique_ptr<std::atomic<std::uint64_t>[]> pair_seq_;

  detail::BufferPool pool_;
  std::mutex contexts_mu_;
  std::map<std::uint64_t, ContextState> contexts_;
  std::atomic<std::uint64_t> next_context_{1};
  std::atomic<bool> aborted_{false};
};

}  // namespace mpp
