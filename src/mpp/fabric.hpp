#pragma once
// The Fabric is the shared-memory "interconnect" behind mpp::Comm.
//
// Design (see DESIGN.md, src/mpp):
//  * Ranks are threads. Each communicator context owns one `Mailbox` per
//    group rank, holding a queue of posted receives and a queue of
//    unexpected messages (standard MPI matching structure).
//  * Small sends are buffered-eager: the payload is copied at the send
//    call into a slab from the fabric's BufferPool, a modeled delivery time
//    is stamped (NetworkModel), and the send request completes immediately.
//    Matching happens at send time if a receive is posted, otherwise the
//    message parks in the unexpected queue; the matching receive returns
//    the slab to the pool, so steady-state traffic allocates nothing.
//  * Sends of kRendezvousBytes or more that find no posted receive take a
//    rendezvous path instead: a zero-copy descriptor (pointer to the
//    sender's buffer + the sender's request) parks in the unexpected queue
//    and the send request stays incomplete until the matching receive
//    copies once, sender buffer -> receive buffer. This halves the copy
//    cost of large messages and bounds the staging memory.
//  * Receive requests complete when (a) matched and (b) the modeled
//    delivery time has passed; waits sleep until then, which is how network
//    cost becomes visible wall-clock time in profiles.
//  * Matching preserves MPI's non-overtaking order per (source, tag).
//  * Reduction-shaped collectives (allreduce/bcast/reduce/gather/alltoall)
//    run through a per-context `CollectiveBay` using an
//    arrive/compute/depart generation protocol. Barrier and the allgather
//    family instead run dissemination / Bruck algorithms over per-rank
//    `HopSlot` relays — O(log n) hops per rank — so they stay sub-quadratic
//    at hundreds of ranks (DESIGN.md §10). Either way one modeled delay is
//    applied per rank on exit.
//
// The Fabric is internal; user code talks to mpp::Comm / mpp::Runtime.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "mpp/fault.hpp"
#include "mpp/netmodel.hpp"
#include "support/rng.hpp"

namespace mpp {

class Fabric;
struct FaultEvent;  // hooks.hpp

/// Wildcards (match MPI semantics).
inline constexpr int any_source = -1;
inline constexpr int any_tag = -1;

/// Completion information for a receive.
struct Status {
  int source = any_source;      ///< group rank of the sender
  int tag = any_tag;            ///< message tag
  std::size_t bytes = 0;        ///< payload size in bytes
};

using Clock = std::chrono::steady_clock;

namespace detail {

class Mailbox;

/// Shared state behind a Request handle.
struct ReqState {
  enum class Kind { send, recv };
  Kind kind = Kind::send;
  /// Set (release) once the message is matched and copied. For sends this
  /// is set before the request is returned.
  std::atomic<bool> matched{false};
  /// Delivery time; completion is gated on Clock::now() >= deliver_at.
  Clock::time_point deliver_at{};
  Status status;
  /// Message identity for hook/trace reporting: world ranks of the two
  /// endpoints and the per-(src,dst) sequence number. Stamped by the
  /// sender before `matched` is released; src_world < 0 means "no message
  /// attached yet" (e.g. an unmatched receive).
  int src_world = -1;
  int dst_world = -1;
  std::uint64_t seq = 0;
  /// Identity of the posted receive inside its mailbox (for cancellation).
  std::uint64_t post_id = 0;
  Mailbox* mailbox = nullptr;           ///< mailbox the recv was posted to
  class RankSignal* signal = nullptr;   ///< wakeup channel of the owning rank
  const std::atomic<bool>* abort_flag = nullptr;  ///< fabric-wide failure flag
  Fabric* fabric = nullptr;             ///< owning fabric (wait-loop polling)
  /// Nonzero when the operation failed permanently: 1 + CommErrc value.
  /// Set (release) before the owner's signal is notified.
  std::atomic<std::uint8_t> failed{0};

  bool aborted() const {
    return abort_flag && abort_flag->load(std::memory_order_acquire);
  }

  /// True when the request is complete *now*.
  bool ready() const {
    return matched.load(std::memory_order_acquire) && Clock::now() >= deliver_at;
  }
  /// True when matched but delivery time is still in the future.
  bool pending_delivery() const {
    return matched.load(std::memory_order_acquire) && Clock::now() < deliver_at;
  }
};

/// A message parked in the unexpected queue. Two flavours share the slot:
/// eager (payload holds a pooled copy of the data) and rendezvous
/// (`rdv_send` is set; `rdv_data`/`rdv_bytes` point into the sender's
/// still-live buffer and the sender's request completes only when a
/// receive matches). Both flavours queue in send order, so matching stays
/// non-overtaking per (source, tag) regardless of message size.
struct ParkedMessage {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  Clock::time_point deliver_at{};
  int src_world = -1;         ///< message identity (see ReqState)
  int dst_world = -1;
  std::uint64_t seq = 0;
  /// Dedupe stream position (1-based, contiguous per (context, source,
  /// destination mailbox)); 0 on the clean path. Injected duplicates and
  /// retries carry the original's value, which is how the DedupeWindow
  /// recognizes them.
  std::uint64_t dseq = 0;
  const std::byte* rdv_data = nullptr;
  std::size_t rdv_bytes = 0;
  std::shared_ptr<ReqState> rdv_send;
  std::uint64_t park_id = 0;  ///< cancellation identity (rendezvous only)
};

/// Size-classed free list of message payload slabs (pow2 classes, 64 B up
/// to the rendezvous cutoff). Thread-safe; a leaf lock — never held while
/// taking another fabric lock.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from a free list
    std::uint64_t releases = 0;  ///< slabs handed back
    std::uint64_t discards = 0;  ///< handed-back slabs dropped (no class/full)
  };

  /// Returns a slab resized to exactly `bytes` (capacity may be larger).
  std::vector<std::byte> acquire(std::size_t bytes);
  /// Hands a slab back for reuse (freed if it fits no class or the class
  /// free list is full).
  void release(std::vector<std::byte>&& slab);
  Stats stats() const;

 private:
  static constexpr std::size_t kMinClassLog2 = 6;   // 64 B
  static constexpr std::size_t kMaxClassLog2 = 16;  // 64 KiB: rendezvous cutoff
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr std::size_t kMaxFreePerClass = 64;

  static int acquire_class(std::size_t bytes);     // smallest class holding bytes
  static int release_class(std::size_t capacity);  // largest class within capacity

  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_[kClasses];
  Stats stats_;
};

/// A receive posted before its message arrived.
struct PostedRecv {
  int src = any_source;
  int tag = any_tag;
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;
  std::uint64_t post_id = 0;
  std::shared_ptr<ReqState> state;
};

/// Per-rank wakeup channel: every completion that might unblock rank r
/// notifies r's signal. Waits (wait/wait_all/wait_some) block here.
class RankSignal {
 public:
  std::mutex mu;
  std::condition_variable cv;
  void notify() {
    std::scoped_lock lock(mu);
    cv.notify_all();
  }
};

/// Per-source duplicate filter with O(1) membership and bounded memory: a
/// watermark (every dedupe sequence number <= it has been accepted) plus a
/// bitset window covering the out-of-order span just above it. Replaces the
/// per-pair std::set of every delivered sequence number, whose memory and
/// lookup cost grew with total message history instead of in-flight faults.
class DedupeWindow {
 public:
  /// Hard cap on the out-of-order span. Reaching it would mean a source
  /// raced 64Ki sends past a still-undelivered message, which the bounded
  /// retry ledger (exponential backoff, capped attempts) cannot produce.
  static constexpr std::uint64_t kMaxWindowBits = std::uint64_t{1} << 16;

  /// True when `seq` (1-based, contiguous per source) was already accepted.
  bool contains(std::uint64_t seq) const {
    if (seq <= watermark_) return true;
    const std::uint64_t off = seq - watermark_ - 1;
    return off < span() && bit(off);
  }

  /// Accepts `seq` and advances the watermark over the now-contiguous
  /// prefix. Returns false when `seq` was already present (a duplicate).
  bool insert(std::uint64_t seq);

  std::uint64_t watermark() const { return watermark_; }
  /// Bits currently spanned beyond the watermark (memory ~ span/8 bytes).
  std::uint64_t span() const {
    return static_cast<std::uint64_t>(words_.size()) * 64 - head_;
  }
  /// Widest out-of-order extent retained after any insert (zero for a
  /// fully in-order stream) — the bounded-memory witness.
  std::uint64_t peak_span() const { return peak_span_; }

 private:
  bool bit(std::uint64_t off) const {
    const std::uint64_t g = head_ + off;
    return (words_[static_cast<std::size_t>(g / 64)] >> (g % 64)) & 1u;
  }

  std::uint64_t watermark_ = 0;
  std::uint64_t head_ = 0;  ///< bit offset of watermark_+1 inside words_[0]
  std::deque<std::uint64_t> words_;
  std::uint64_t peak_span_ = 0;
};

/// Matching queues for one (context, group-rank).
class Mailbox {
 public:
  std::mutex mu;
  std::deque<ParkedMessage> unexpected;
  std::deque<PostedRecv> posted;
  std::uint64_t next_post_id = 1;
  /// Duplicate filters, one per sender, maintained only while a FaultPlan
  /// is active. Keyed by the per-(context, source, this-mailbox) dedupe
  /// stream (`dedupe_next`, assigned at send time): the global pair
  /// sequence is shared by every context of a rank pair, so only this
  /// stream is contiguous here — which is what lets a watermark replace
  /// the delivered-set.
  std::map<int, DedupeWindow> dedupe;
  std::map<int, std::uint64_t> dedupe_next;
};

/// A message captured by the fault layer: either held for later release
/// (delay/duplicate/reorder) or sitting in the retransmission ledger after
/// a drop. Routing metadata is kept alongside so `Fabric::fault_poll` can
/// re-inject it without a Comm.
struct FaultedMessage {
  std::uint64_t context = 0;
  int dest_group = 0;
  int dest_world = 0;
  ParkedMessage msg;
  std::uint64_t release_step = 0;  ///< held: release once progress reaches this
  bool release_on_next = false;    ///< reorder: release when the pair's next message routes
  std::uint32_t attempt = 0;       ///< ledger: delivery attempts so far (>= 1)
};

/// Per-(context, group-rank) relay slot for tree collectives (barrier /
/// allgather / allgatherv). Peers deposit per-round payloads here instead
/// of rendezvousing in the CollectiveBay, so those collectives cost
/// O(log n) hops per rank rather than one fully serialized n-rank
/// rendezvous. Keyed by (generation, round): every rank executes the same
/// collective sequence on a context, so the owner's tree-op counter and
/// each sender's counter agree without shared state. Deposits never block
/// (the map buffers early arrivals); receives wait on `cv`.
struct HopSlot {
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<std::uint64_t, int>, std::vector<std::byte>> arrived;
  /// Completed tree ops of the owning rank; touched only by the owner's
  /// thread (no lock needed).
  std::uint64_t generation = 0;
};

/// Shared-memory collective rendezvous for one communicator context.
class CollectiveBay {
 public:
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  int departed = 0;
  bool complete = false;
  std::uint64_t generation = 0;
  /// Scratch shared by the participating ranks; layout is op-specific.
  std::vector<std::byte> scratch;
  /// Op-agreed value published by the first/root arriver (context ids...).
  std::uint64_t agreed_u64 = 0;
};

}  // namespace detail

/// The interconnect. One Fabric per Runtime::run invocation.
class Fabric {
 public:
  Fabric(int world_size, NetworkModel net);

  int world_size() const { return world_size_; }
  const NetworkModel& net() const { return net_; }

  double wtime_seconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Modeled delay for `bytes` charged to sending world-rank `world_rank`.
  double delay_us(int world_rank, std::size_t bytes) {
    if (net_.is_null()) return 0.0;
    return net_.delay_us(bytes, rngs_[static_cast<std::size_t>(world_rank)]);
  }

  /// Next per-(src,dst) point-to-point sequence number (1-based, send
  /// order). Ranks are single threads, so sends for a given ordered pair
  /// are already serialized; the atomic makes cross-pair access safe.
  std::uint64_t next_pair_seq(int src_world, int dst_world) {
    auto& c = pair_seq_[static_cast<std::size_t>(src_world) *
                            static_cast<std::size_t>(world_size_) +
                        static_cast<std::size_t>(dst_world)];
    return c.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Allocates a fresh communicator context id (thread-safe).
  std::uint64_t allocate_context();

  /// Reserves `n` consecutive context ids, returning the first.
  std::uint64_t allocate_context_block(std::size_t n) {
    return next_context_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Ensures matching/collective structures exist for `context` with
  /// `group_size` members. Idempotent; thread-safe.
  void ensure_context(std::uint64_t context, int group_size);

  detail::Mailbox& mailbox(std::uint64_t context, int group_rank);
  detail::CollectiveBay& bay(std::uint64_t context);
  detail::HopSlot& hop_slot(std::uint64_t context, int group_rank);
  detail::BufferPool& pool() { return pool_; }
  detail::RankSignal& signal(int world_rank) {
    return *signals_[static_cast<std::size_t>(world_rank)];
  }

  /// Marks the fabric dead and wakes every blocked wait/collective so rank
  /// failures propagate instead of deadlocking the remaining ranks.
  void abort();
  bool is_aborted() const { return aborted_.load(std::memory_order_acquire); }
  const std::atomic<bool>* abort_flag() const { return &aborted_; }

  // --- fault injection & recovery (see fault.hpp, DESIGN.md §8) ----------

  /// Installs a fault schedule. Call before rank threads start (the
  /// Runtime does this); not thread-safe against in-flight traffic.
  void set_fault_spec(const FaultSpec& spec);
  const FaultPlan& fault_plan() const { return fault_plan_; }
  bool faults_active() const { return fault_plan_.active(); }

  /// Wait timeout / no-progress bound, microseconds; 0 disables. Set
  /// before rank threads start. The no-progress bound defaults on so a
  /// wait for a message that never comes fails instead of hanging forever.
  void set_wait_timeout_us(double us) { wait_timeout_us_ = us; }
  double wait_timeout_us() const { return wait_timeout_us_; }
  void set_idle_limit_us(double us) { idle_limit_us_ = us; }
  double idle_limit_us() const { return idle_limit_us_; }
  static constexpr double kDefaultIdleLimitUs = 60e6;

  /// Monotone "anything moved" counter: bumped whenever a message is
  /// routed, matched, or parked anywhere in the fabric. Wait loops watch it
  /// for the no-progress bound.
  std::uint64_t activity() const { return activity_.load(std::memory_order_acquire); }
  void note_activity() { activity_.fetch_add(1, std::memory_order_release); }

  /// Fault-layer progress driver: advances the global step counter, routes
  /// held messages whose release step arrived, and retransmits ledger
  /// entries whose backoff expired. Called from wait quanta, test(), and
  /// sends; no-op when no plan is active. Never call while holding a
  /// signal or mailbox lock.
  void fault_poll();
  std::uint64_t progress_step() const {
    return progress_step_.load(std::memory_order_acquire);
  }

  /// Per-send stall probe: deterministically stalls the calling rank for
  /// spec().stall_us when the plan says so.
  void maybe_stall(int world_rank);

  /// Routes a fault-layer message into `dest`'s mailbox: dedupe filter,
  /// then match-or-park (the faulty-path twin of Comm::deliver's matching
  /// block). Completes an attached reliable sender at match time.
  void route(std::uint64_t context, int dest_group, int dest_world,
             detail::ParkedMessage&& msg);
  /// Holds `msg` for `steps` progress steps (delay/duplicate), or until the
  /// pair's next message routes (reorder).
  void fault_hold(std::uint64_t context, int dest_group, int dest_world,
                  detail::ParkedMessage&& msg, int steps, bool release_on_next);
  /// Drops `msg` into the retransmission ledger (first attempt already
  /// counted as injected).
  void fault_lose(std::uint64_t context, int dest_group, int dest_world,
                  detail::ParkedMessage&& msg);

  /// Snapshot of fault/recovery counters plus delivery-state gauges (the
  /// dedupe fields walk the mailboxes, so this is a test/report call, not
  /// a hot-path one).
  FaultStats fault_stats();
  /// Recovery accounting fed from Comm / amr: wait timeouts and stale-ghost
  /// fallbacks (the events themselves are fired by the caller's hooks).
  void count_timeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }
  void count_stale_fallback() {
    stale_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Context id of the world communicator.
  static constexpr std::uint64_t world_context = 0;

  /// Unmatched sends of at least this many bytes take the rendezvous path
  /// (single copy, send completes at match time) instead of the
  /// buffered-eager path (pooled staging copy, send completes immediately).
  static constexpr std::size_t kRendezvousBytes = 64 * 1024;

 private:
  struct ContextState {
    std::vector<std::unique_ptr<detail::Mailbox>> mailboxes;
    std::vector<std::unique_ptr<detail::HopSlot>> hop_slots;
    std::unique_ptr<detail::CollectiveBay> bay;
  };

  /// Releases reorder-held messages of (src, dst) after a later message of
  /// that pair routed.
  void flush_reorder(int src_world, int dst_world);
  /// Files a captured message into the in-flight store and its indexes.
  void fault_enqueue(detail::FaultedMessage&& fm);
  /// Records an accepted dedupe-stream position (watermark/window update)
  /// for `src_world` in the given mailbox; caller holds no mailbox lock.
  void dedupe_tombstone(std::uint64_t context, int dest_group, int src_world,
                        std::uint64_t dseq);
  /// Fires a fault event on the calling rank's hooks (if any).
  static void fire_fault(const FaultEvent& e);

  int world_size_;
  NetworkModel net_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<ccaperf::Rng> rngs_;  // one jitter stream per world rank
  std::vector<std::unique_ptr<detail::RankSignal>> signals_;
  /// world_size^2 ordered-pair message counters (row = src, col = dst).
  std::unique_ptr<std::atomic<std::uint64_t>[]> pair_seq_;

  detail::BufferPool pool_;
  std::mutex contexts_mu_;
  std::map<std::uint64_t, ContextState> contexts_;
  std::atomic<std::uint64_t> next_context_{1};
  std::atomic<bool> aborted_{false};

  // Fault layer. `fault_mu_` is a leaf lock guarding the in-flight fault
  // store and its two indexes; it is never held while taking a mailbox or
  // signal lock (entries are moved out first, then routed).
  //
  // Every captured message (held *or* ledgered) lives once in
  // `fault_items_` under a monotone id. `fault_due_` indexes ids by
  // release step so a progress poll pops exactly the due prefix —
  // O(due + log size) — instead of scanning every in-flight entry.
  // `fault_reorder_` indexes reorder-held ids by (src, dst) world-rank
  // pair so the routing of the pair's next message releases predecessors
  // without a scan. An id can sit in both indexes (reorder entries keep a
  // step fallback); whichever trigger fires first wins, and the loser's
  // stale index entry is skipped because the id is gone from the store.
  FaultPlan fault_plan_;
  double wait_timeout_us_ = 0.0;
  double idle_limit_us_ = kDefaultIdleLimitUs;
  std::atomic<std::uint64_t> progress_step_{0};
  std::atomic<std::uint64_t> activity_{0};
  std::mutex fault_mu_;
  std::uint64_t next_fault_id_ = 1;
  std::map<std::uint64_t, detail::FaultedMessage> fault_items_;
  std::multimap<std::uint64_t, std::uint64_t> fault_due_;
  std::map<std::pair<int, int>, std::deque<std::uint64_t>> fault_reorder_;
  std::uint64_t fault_items_peak_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> stall_checks_;
  std::atomic<std::uint64_t> injected_drops_{0};
  std::atomic<std::uint64_t> injected_delays_{0};
  std::atomic<std::uint64_t> injected_duplicates_{0};
  std::atomic<std::uint64_t> injected_reorders_{0};
  std::atomic<std::uint64_t> injected_stalls_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retries_exhausted_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<std::uint64_t> dedupe_span_peak_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> stale_fallbacks_{0};

  friend class Comm;
};

}  // namespace mpp
