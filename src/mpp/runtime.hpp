#pragma once
// mpp::Runtime — SCMD launcher.
//
// CCAFFEINE's parallel model (paper §3.1) is SCMD: "Identical frameworks,
// containing the same components, are instantiated on all P processors."
// Runtime::run reproduces that: it spins up P rank threads, each of which
// receives its own world communicator handle and executes the same
// `rank_main` — inside which the case study instantiates a full CCA
// framework per rank.
//
// Exceptions thrown by any rank are captured; the first one is rethrown on
// the launching thread after all ranks have been joined.

#include <functional>

#include "mpp/comm.hpp"
#include "mpp/fault.hpp"
#include "mpp/netmodel.hpp"

namespace mpp {

/// Everything a run can configure beyond the rank count. Environment knobs
/// override fields at launch (see Runtime::run): CCAPERF_FAULT_PLAN /
/// CCAPERF_FAULT_SEED install a fault schedule, CCAPERF_WAIT_TIMEOUT_MS /
/// CCAPERF_WAIT_IDLE_MS tune the wait bounds.
struct RunOptions {
  NetworkModel net = NetworkModel::null_model();
  FaultSpec faults{};  ///< inactive unless a rate is > 0
  double wait_timeout_us = 0.0;  ///< 0 = no per-wait timeout
  double idle_limit_us = Fabric::kDefaultIdleLimitUs;  ///< no-progress bound
};

class Runtime {
 public:
  /// Runs `rank_main(world)` on `nranks` threads sharing one Fabric.
  /// Blocks until every rank returns. Rethrows the first rank exception.
  static void run(int nranks, const RunOptions& opts,
                  const std::function<void(Comm&)>& rank_main);

  static void run(int nranks, const NetworkModel& net,
                  const std::function<void(Comm&)>& rank_main) {
    RunOptions opts;
    opts.net = net;
    run(nranks, opts, rank_main);
  }

  /// Convenience overload with no injected network delays.
  static void run(int nranks, const std::function<void(Comm&)>& rank_main) {
    run(nranks, RunOptions{}, rank_main);
  }
};

}  // namespace mpp
