#pragma once
// mpp::Runtime — SCMD launcher.
//
// CCAFFEINE's parallel model (paper §3.1) is SCMD: "Identical frameworks,
// containing the same components, are instantiated on all P processors."
// Runtime::run reproduces that: it spins up P rank threads, each of which
// receives its own world communicator handle and executes the same
// `rank_main` — inside which the case study instantiates a full CCA
// framework per rank.
//
// Exceptions thrown by any rank are captured; the first one is rethrown on
// the launching thread after all ranks have been joined.

#include <functional>

#include "mpp/comm.hpp"
#include "mpp/netmodel.hpp"

namespace mpp {

class Runtime {
 public:
  /// Runs `rank_main(world)` on `nranks` threads sharing one Fabric.
  /// Blocks until every rank returns. Rethrows the first rank exception.
  static void run(int nranks, const NetworkModel& net,
                  const std::function<void(Comm&)>& rank_main);

  /// Convenience overload with no injected network delays.
  static void run(int nranks, const std::function<void(Comm&)>& rank_main) {
    run(nranks, NetworkModel::null_model(), rank_main);
  }
};

}  // namespace mpp
