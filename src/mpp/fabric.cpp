#include "mpp/fabric.hpp"

#include "support/error.hpp"

namespace mpp {

namespace detail {

int BufferPool::acquire_class(std::size_t bytes) {
  for (std::size_t c = 0; c < kClasses; ++c)
    if (bytes <= (std::size_t{1} << (kMinClassLog2 + c))) return static_cast<int>(c);
  return -1;
}

int BufferPool::release_class(std::size_t capacity) {
  if (capacity < (std::size_t{1} << kMinClassLog2)) return -1;
  std::size_t c = 0;
  while (c + 1 < kClasses &&
         (std::size_t{1} << (kMinClassLog2 + c + 1)) <= capacity)
    ++c;
  return static_cast<int>(c);
}

std::vector<std::byte> BufferPool::acquire(std::size_t bytes) {
  const int cls = acquire_class(bytes);
  {
    std::scoped_lock lock(mu_);
    ++stats_.acquires;
    if (cls >= 0 && !free_[cls].empty()) {
      std::vector<std::byte> slab = std::move(free_[cls].back());
      free_[cls].pop_back();
      ++stats_.reuses;
      slab.resize(bytes);
      return slab;
    }
  }
  // Fresh slab, sized to its class so a future release files it back.
  std::vector<std::byte> slab;
  if (cls >= 0)
    slab.reserve(std::size_t{1} << (kMinClassLog2 + static_cast<std::size_t>(cls)));
  slab.resize(bytes);
  return slab;
}

void BufferPool::release(std::vector<std::byte>&& slab) {
  const int cls = release_class(slab.capacity());
  std::scoped_lock lock(mu_);
  ++stats_.releases;
  if (cls < 0 || free_[cls].size() >= kMaxFreePerClass) {
    ++stats_.discards;
    return;  // slab freed on scope exit
  }
  free_[cls].push_back(std::move(slab));
}

BufferPool::Stats BufferPool::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace detail

Fabric::Fabric(int world_size, NetworkModel net)
    : world_size_(world_size), net_(net) {
  CCAPERF_REQUIRE(world_size >= 1, "Fabric: world_size must be >= 1");
  ccaperf::Rng seeder(net_.seed);
  rngs_.reserve(static_cast<std::size_t>(world_size));
  signals_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    rngs_.push_back(seeder.split(static_cast<std::uint64_t>(r)));
    signals_.push_back(std::make_unique<detail::RankSignal>());
  }
  pair_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(world_size) * static_cast<std::size_t>(world_size));
  ensure_context(world_context, world_size);
}

std::uint64_t Fabric::allocate_context() {
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

void Fabric::ensure_context(std::uint64_t context, int group_size) {
  CCAPERF_REQUIRE(group_size >= 1, "ensure_context: empty group");
  std::scoped_lock lock(contexts_mu_);
  auto [it, inserted] = contexts_.try_emplace(context);
  if (!inserted) {
    CCAPERF_REQUIRE(it->second.mailboxes.size() == static_cast<std::size_t>(group_size),
                    "ensure_context: conflicting group size for context");
    return;
  }
  it->second.mailboxes.reserve(static_cast<std::size_t>(group_size));
  for (int r = 0; r < group_size; ++r)
    it->second.mailboxes.push_back(std::make_unique<detail::Mailbox>());
  it->second.bay = std::make_unique<detail::CollectiveBay>();
}

detail::Mailbox& Fabric::mailbox(std::uint64_t context, int group_rank) {
  std::scoped_lock lock(contexts_mu_);
  auto it = contexts_.find(context);
  CCAPERF_REQUIRE(it != contexts_.end(), "mailbox: unknown context");
  auto& boxes = it->second.mailboxes;
  CCAPERF_REQUIRE(group_rank >= 0 && static_cast<std::size_t>(group_rank) < boxes.size(),
                  "mailbox: group rank out of range");
  return *boxes[static_cast<std::size_t>(group_rank)];
}

void Fabric::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& sig : signals_) sig->notify();
  std::scoped_lock lock(contexts_mu_);
  for (auto& [id, state] : contexts_) {
    std::scoped_lock bay_lock(state.bay->mu);
    state.bay->cv.notify_all();
  }
}

detail::CollectiveBay& Fabric::bay(std::uint64_t context) {
  std::scoped_lock lock(contexts_mu_);
  auto it = contexts_.find(context);
  CCAPERF_REQUIRE(it != contexts_.end(), "bay: unknown context");
  return *it->second.bay;
}

}  // namespace mpp
