#include "mpp/fabric.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <thread>

#include "mpp/hooks.hpp"
#include "support/error.hpp"

namespace mpp {

namespace detail {

int BufferPool::acquire_class(std::size_t bytes) {
  for (std::size_t c = 0; c < kClasses; ++c)
    if (bytes <= (std::size_t{1} << (kMinClassLog2 + c))) return static_cast<int>(c);
  return -1;
}

int BufferPool::release_class(std::size_t capacity) {
  if (capacity < (std::size_t{1} << kMinClassLog2)) return -1;
  std::size_t c = 0;
  while (c + 1 < kClasses &&
         (std::size_t{1} << (kMinClassLog2 + c + 1)) <= capacity)
    ++c;
  return static_cast<int>(c);
}

std::vector<std::byte> BufferPool::acquire(std::size_t bytes) {
  const int cls = acquire_class(bytes);
  {
    std::scoped_lock lock(mu_);
    ++stats_.acquires;
    if (cls >= 0 && !free_[cls].empty()) {
      std::vector<std::byte> slab = std::move(free_[cls].back());
      free_[cls].pop_back();
      ++stats_.reuses;
      slab.resize(bytes);
      return slab;
    }
  }
  // Fresh slab, sized to its class so a future release files it back.
  std::vector<std::byte> slab;
  if (cls >= 0)
    slab.reserve(std::size_t{1} << (kMinClassLog2 + static_cast<std::size_t>(cls)));
  slab.resize(bytes);
  return slab;
}

void BufferPool::release(std::vector<std::byte>&& slab) {
  const int cls = release_class(slab.capacity());
  std::scoped_lock lock(mu_);
  ++stats_.releases;
  if (cls < 0 || free_[cls].size() >= kMaxFreePerClass) {
    ++stats_.discards;
    return;  // slab freed on scope exit
  }
  free_[cls].push_back(std::move(slab));
}

BufferPool::Stats BufferPool::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

bool DedupeWindow::insert(std::uint64_t seq) {
  if (contains(seq)) return false;
  const std::uint64_t off = seq - watermark_ - 1;
  CCAPERF_REQUIRE(off < kMaxWindowBits,
                  "DedupeWindow: out-of-order span exceeded the window cap");
  while (span() <= off) words_.push_back(0);
  {
    const std::uint64_t g = head_ + off;
    words_[static_cast<std::size_t>(g / 64)] |= std::uint64_t{1} << (g % 64);
  }
  // Slide the watermark over the contiguous accepted prefix, clearing each
  // consumed bit so a drained window releases its words; amortized O(1)
  // per insert.
  while (span() > 0 && ((words_.front() >> head_) & 1u)) {
    ++watermark_;
    words_.front() &= ~(std::uint64_t{1} << head_);
    if (++head_ == 64) {
      words_.pop_front();
      head_ = 0;
    }
  }
  // Trailing all-zero words carry no membership (every set bit is below
  // them), so span() stays an exact measure of the out-of-order extent.
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
  if (words_.empty()) head_ = 0;
  peak_span_ = std::max(peak_span_, span());
  return true;
}

}  // namespace detail

Fabric::Fabric(int world_size, NetworkModel net)
    : world_size_(world_size), net_(net) {
  CCAPERF_REQUIRE(world_size >= 1, "Fabric: world_size must be >= 1");
  ccaperf::Rng seeder(net_.seed);
  rngs_.reserve(static_cast<std::size_t>(world_size));
  signals_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    rngs_.push_back(seeder.split(static_cast<std::uint64_t>(r)));
    signals_.push_back(std::make_unique<detail::RankSignal>());
  }
  pair_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(world_size) * static_cast<std::size_t>(world_size));
  stall_checks_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(world_size));
  ensure_context(world_context, world_size);
}

void Fabric::set_fault_spec(const FaultSpec& spec) {
  fault_plan_ = FaultPlan(spec);
}

std::uint64_t Fabric::allocate_context() {
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

void Fabric::ensure_context(std::uint64_t context, int group_size) {
  CCAPERF_REQUIRE(group_size >= 1, "ensure_context: empty group");
  std::scoped_lock lock(contexts_mu_);
  auto [it, inserted] = contexts_.try_emplace(context);
  if (!inserted) {
    CCAPERF_REQUIRE(it->second.mailboxes.size() == static_cast<std::size_t>(group_size),
                    "ensure_context: conflicting group size for context");
    return;
  }
  it->second.mailboxes.reserve(static_cast<std::size_t>(group_size));
  it->second.hop_slots.reserve(static_cast<std::size_t>(group_size));
  for (int r = 0; r < group_size; ++r) {
    it->second.mailboxes.push_back(std::make_unique<detail::Mailbox>());
    it->second.hop_slots.push_back(std::make_unique<detail::HopSlot>());
  }
  it->second.bay = std::make_unique<detail::CollectiveBay>();
}

detail::Mailbox& Fabric::mailbox(std::uint64_t context, int group_rank) {
  std::scoped_lock lock(contexts_mu_);
  auto it = contexts_.find(context);
  CCAPERF_REQUIRE(it != contexts_.end(), "mailbox: unknown context");
  auto& boxes = it->second.mailboxes;
  CCAPERF_REQUIRE(group_rank >= 0 && static_cast<std::size_t>(group_rank) < boxes.size(),
                  "mailbox: group rank out of range");
  return *boxes[static_cast<std::size_t>(group_rank)];
}

void Fabric::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& sig : signals_) sig->notify();
  std::scoped_lock lock(contexts_mu_);
  for (auto& [id, state] : contexts_) {
    {
      std::scoped_lock bay_lock(state.bay->mu);
      state.bay->cv.notify_all();
    }
    for (auto& slot : state.hop_slots) {
      std::scoped_lock slot_lock(slot->mu);
      slot->cv.notify_all();
    }
  }
}

detail::CollectiveBay& Fabric::bay(std::uint64_t context) {
  std::scoped_lock lock(contexts_mu_);
  auto it = contexts_.find(context);
  CCAPERF_REQUIRE(it != contexts_.end(), "bay: unknown context");
  return *it->second.bay;
}

detail::HopSlot& Fabric::hop_slot(std::uint64_t context, int group_rank) {
  std::scoped_lock lock(contexts_mu_);
  auto it = contexts_.find(context);
  CCAPERF_REQUIRE(it != contexts_.end(), "hop_slot: unknown context");
  auto& slots = it->second.hop_slots;
  CCAPERF_REQUIRE(group_rank >= 0 &&
                      static_cast<std::size_t>(group_rank) < slots.size(),
                  "hop_slot: group rank out of range");
  return *slots[static_cast<std::size_t>(group_rank)];
}

// ---------------------------------------------------------------------------
// Fault layer
// ---------------------------------------------------------------------------

namespace {

bool recv_matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == any_source || want_src == src) &&
         (want_tag == any_tag || want_tag == tag);
}

}  // namespace

void Fabric::fire_fault(const FaultEvent& e) {
  if (CommHooks* h = hooks()) h->on_fault(e);
}

void Fabric::maybe_stall(int world_rank) {
  const std::uint64_t check =
      stall_checks_[static_cast<std::size_t>(world_rank)].fetch_add(
          1, std::memory_order_relaxed);
  if (!fault_plan_.stall_at(world_rank, check)) return;
  injected_stalls_.fetch_add(1, std::memory_order_relaxed);
  fire_fault(FaultEvent{FaultEvent::Type::injected, FaultKind::stall, world_rank,
                        -1, 0, 0});
  const double us = fault_plan_.spec().stall_us;
  if (us > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

void Fabric::route(std::uint64_t context, int dest_group, int dest_world,
                   detail::ParkedMessage&& msg) {
  std::shared_ptr<detail::ReqState> completed;
  std::shared_ptr<detail::ReqState> ack_sender;
  bool suppressed = false;
  const int msg_src_world = msg.src_world;
  const int msg_dst_world = msg.dst_world;
  detail::Mailbox& mb = mailbox(context, dest_group);
  {
    std::scoped_lock lock(mb.mu);
    // Dedupe before matching: the duplicate of an already-accepted message
    // (delivered *or* still parked — the window marks at accept time, so
    // one O(1) probe covers both) must never reach a receive.
    if (msg.dseq != 0) {
      detail::DedupeWindow& win = mb.dedupe[msg.src_world];
      suppressed = !win.insert(msg.dseq);
      if (!suppressed) {
        std::uint64_t peak = dedupe_span_peak_.load(std::memory_order_relaxed);
        while (peak < win.peak_span() &&
               !dedupe_span_peak_.compare_exchange_weak(
                   peak, win.peak_span(), std::memory_order_relaxed))
          ;
      }
    }
    if (!suppressed) {
      for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
        if (recv_matches(it->src, it->tag, msg.src, msg.tag)) {
          const std::size_t bytes = msg.payload.size();
          CCAPERF_REQUIRE(bytes <= it->capacity,
                          "message truncation: receive buffer too small");
          if (bytes > 0) std::memcpy(it->buffer, msg.payload.data(), bytes);
          it->state->status = Status{msg.src, msg.tag, bytes};
          it->state->deliver_at = msg.deliver_at;
          it->state->src_world = msg.src_world;
          it->state->dst_world = msg.dst_world;
          it->state->seq = msg.seq;
          completed = it->state;
          mb.posted.erase(it);
          break;
        }
      }
      if (!completed) {
        if (msg.rdv_send) {
          // Reliable-class message parks with its sender attached so the
          // eventual match acknowledges (completes) the send, and so a
          // dropped Request handle can still cancel the parked entry.
          msg.park_id = mb.next_post_id++;
          msg.rdv_send->mailbox = &mb;
          msg.rdv_send->post_id = msg.park_id;
        }
        mb.unexpected.push_back(std::move(msg));
      } else if (msg.rdv_send) {
        ack_sender = msg.rdv_send;
        ack_sender->deliver_at = msg.deliver_at;
      }
    }
  }
  if (suppressed) {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
    fire_fault(FaultEvent{FaultEvent::Type::duplicate_suppressed,
                          FaultKind::duplicate, msg.src_world, msg.dst_world,
                          msg.seq, 0});
    if (!msg.payload.empty()) pool_.release(std::move(msg.payload));
    return;
  }
  note_activity();
  if (completed) {
    if (!msg.payload.empty()) pool_.release(std::move(msg.payload));
    completed->matched.store(true, std::memory_order_release);
    signal(dest_world).notify();
    if (ack_sender) {
      ack_sender->matched.store(true, std::memory_order_release);
      ack_sender->signal->notify();
    }
  } else {
    signal(dest_world).notify();  // a blocked blocking-recv may now match
  }
  // Routing (matched *or* parked) is the "next message of the pair" trigger
  // that releases reorder-held predecessors.
  flush_reorder(msg_src_world, msg_dst_world);
}

void Fabric::flush_reorder(int src_world, int dst_world) {
  if (!fault_plan_.active()) return;
  for (;;) {
    detail::FaultedMessage next;
    bool found = false;
    {
      std::scoped_lock lock(fault_mu_);
      auto pit = fault_reorder_.find({src_world, dst_world});
      if (pit != fault_reorder_.end()) {
        while (!pit->second.empty() && !found) {
          const std::uint64_t id = pit->second.front();
          pit->second.pop_front();
          auto it = fault_items_.find(id);
          // A missing id was already released by the step fallback in
          // fault_poll; its index entry is stale, skip it.
          if (it == fault_items_.end()) continue;
          next = std::move(it->second);
          fault_items_.erase(it);
          found = true;  // its fault_due_ entry goes stale the same way
        }
        if (pit->second.empty()) fault_reorder_.erase(pit);
      }
    }
    if (!found) return;
    route(next.context, next.dest_group, next.dest_world, std::move(next.msg));
  }
}

void Fabric::fault_enqueue(detail::FaultedMessage&& fm) {
  std::scoped_lock lock(fault_mu_);
  const std::uint64_t id = next_fault_id_++;
  fault_due_.emplace(fm.release_step, id);
  if (fm.release_on_next)
    fault_reorder_[{fm.msg.src_world, fm.msg.dst_world}].push_back(id);
  fault_items_.emplace(id, std::move(fm));
  fault_items_peak_ =
      std::max(fault_items_peak_, static_cast<std::uint64_t>(fault_items_.size()));
}

void Fabric::fault_hold(std::uint64_t context, int dest_group, int dest_world,
                        detail::ParkedMessage&& msg, int steps,
                        bool release_on_next) {
  detail::FaultedMessage h;
  h.context = context;
  h.dest_group = dest_group;
  h.dest_world = dest_world;
  h.release_step = progress_step_.load(std::memory_order_acquire) +
                   static_cast<std::uint64_t>(steps);
  h.release_on_next = release_on_next;
  h.msg = std::move(msg);
  fault_enqueue(std::move(h));
}

void Fabric::fault_lose(std::uint64_t context, int dest_group, int dest_world,
                        detail::ParkedMessage&& msg) {
  detail::FaultedMessage l;
  l.context = context;
  l.dest_group = dest_group;
  l.dest_world = dest_world;
  l.attempt = 1;
  l.release_step = progress_step_.load(std::memory_order_acquire) +
                   static_cast<std::uint64_t>(fault_plan_.spec().retry_base_steps);
  l.msg = std::move(msg);
  fault_enqueue(std::move(l));
}

void Fabric::dedupe_tombstone(std::uint64_t context, int dest_group,
                              int src_world, std::uint64_t dseq) {
  if (dseq == 0) return;
  detail::Mailbox& mb = mailbox(context, dest_group);
  std::scoped_lock lock(mb.mu);
  mb.dedupe[src_world].insert(dseq);
}

void Fabric::fault_poll() {
  if (!fault_plan_.active()) return;
  const std::uint64_t step = progress_step_.fetch_add(1, std::memory_order_acq_rel) + 1;

  std::vector<detail::FaultedMessage> due;
  std::vector<FaultEvent> events;
  std::vector<std::shared_ptr<detail::ReqState>> failed_senders;
  struct Tombstone {
    std::uint64_t context;
    int dest_group;
    int src_world;
    std::uint64_t dseq;
  };
  std::vector<Tombstone> tombstones;
  {
    std::scoped_lock lock(fault_mu_);
    const FaultSpec& spec = fault_plan_.spec();
    // Pop exactly the due prefix of the step index; cost is O(due), not
    // O(in-flight history). Ids released earlier through flush_reorder are
    // gone from the store and their index entries skip harmlessly.
    while (!fault_due_.empty() && fault_due_.begin()->first <= step) {
      const std::uint64_t id = fault_due_.begin()->second;
      fault_due_.erase(fault_due_.begin());
      auto it = fault_items_.find(id);
      if (it == fault_items_.end()) continue;
      detail::FaultedMessage& fm = it->second;
      if (fm.attempt == 0) {
        // Held (delay/duplicate/reorder): release now. For reorder entries
        // this step threshold is the fallback when no later pair message
        // ever routes; drop the pair-index entry it leaves behind.
        if (fm.release_on_next) {
          auto pit =
              fault_reorder_.find({fm.msg.src_world, fm.msg.dst_world});
          if (pit != fault_reorder_.end()) {
            auto& ids = pit->second;
            for (auto idit = ids.begin(); idit != ids.end(); ++idit) {
              if (*idit == id) {
                ids.erase(idit);
                break;
              }
            }
            if (ids.empty()) fault_reorder_.erase(pit);
          }
        }
        due.push_back(std::move(fm));
        fault_items_.erase(it);
        continue;
      }
      const std::uint32_t attempt = fm.attempt + 1;
      if (attempt > static_cast<std::uint32_t>(spec.retry_max_attempts)) {
        events.push_back(FaultEvent{FaultEvent::Type::retry_exhausted,
                                    FaultKind::drop, fm.msg.src_world,
                                    fm.msg.dst_world, fm.msg.seq, fm.attempt});
        if (fm.msg.rdv_send) failed_senders.push_back(std::move(fm.msg.rdv_send));
        // The message is permanently lost: tombstone its dedupe-stream
        // position so the destination's watermark can advance over it
        // instead of pinning the window open forever.
        tombstones.push_back(Tombstone{fm.context, fm.dest_group,
                                       fm.msg.src_world, fm.msg.dseq});
        fault_items_.erase(it);
        continue;
      }
      fm.attempt = attempt;
      events.push_back(FaultEvent{FaultEvent::Type::retry, FaultKind::drop,
                                  fm.msg.src_world, fm.msg.dst_world,
                                  fm.msg.seq, attempt});
      const FaultDecision redecide = fault_plan_.decide(
          fm.msg.src_world, fm.msg.dst_world, fm.msg.seq, attempt);
      if (redecide.kind == FaultKind::drop) {
        // Lost again: exponential backoff before the next attempt.
        fm.release_step =
            step + (static_cast<std::uint64_t>(spec.retry_base_steps)
                    << (attempt - 1));
        fault_due_.emplace(fm.release_step, id);
      } else {
        due.push_back(std::move(fm));
        fault_items_.erase(it);
      }
    }
  }
  // Deterministic release order: triggers were compared against the same
  // step, so order by message identity alone.
  std::sort(due.begin(), due.end(),
            [](const detail::FaultedMessage& a, const detail::FaultedMessage& b) {
              if (a.msg.src_world != b.msg.src_world)
                return a.msg.src_world < b.msg.src_world;
              if (a.msg.dst_world != b.msg.dst_world)
                return a.msg.dst_world < b.msg.dst_world;
              return a.msg.seq < b.msg.seq;
            });
  for (const FaultEvent& e : events) {
    if (e.type == FaultEvent::Type::retry)
      retries_.fetch_add(1, std::memory_order_relaxed);
    else
      retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
    fire_fault(e);
  }
  for (auto& sender : failed_senders) {
    sender->failed.store(1 + static_cast<std::uint8_t>(CommErrc::retry_exhausted),
                         std::memory_order_release);
    sender->signal->notify();
  }
  for (const Tombstone& t : tombstones)
    dedupe_tombstone(t.context, t.dest_group, t.src_world, t.dseq);
  for (auto& m : due)
    route(m.context, m.dest_group, m.dest_world, std::move(m.msg));
}

FaultStats Fabric::fault_stats() {
  FaultStats s;
  {
    std::scoped_lock lock(fault_mu_);
    s.fault_items_peak = fault_items_peak_;
  }
  s.dedupe_span_peak = dedupe_span_peak_.load(std::memory_order_relaxed);
  // Smallest watermark among sources that delivered anything: walking the
  // mailboxes is fine here, fault_stats is a report-time call.
  std::uint64_t wm_min = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  {
    std::scoped_lock lock(contexts_mu_);
    for (auto& [id, state] : contexts_) {
      for (auto& mb : state.mailboxes) {
        std::scoped_lock mb_lock(mb->mu);
        for (const auto& [src, win] : mb->dedupe) {
          any = true;
          wm_min = std::min(wm_min, win.watermark());
        }
      }
    }
  }
  s.dedupe_watermark_min = any ? wm_min : 0;
  s.injected_drops = injected_drops_.load(std::memory_order_relaxed);
  s.injected_delays = injected_delays_.load(std::memory_order_relaxed);
  s.injected_duplicates = injected_duplicates_.load(std::memory_order_relaxed);
  s.injected_reorders = injected_reorders_.load(std::memory_order_relaxed);
  s.injected_stalls = injected_stalls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.retries_exhausted = retries_exhausted_.load(std::memory_order_relaxed);
  s.duplicates_suppressed = duplicates_suppressed_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.stale_fallbacks = stale_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mpp
