#pragma once
// Network performance model for the in-process message-passing fabric.
//
// The paper's case study ran on three nodes of a commodity cluster and
// attributes the scatter in Fig. 9's ghost-cell-update timings to
// "fluctuating network loads". Our fabric moves bytes through shared memory,
// so message cost is modeled explicitly: a latency + size/bandwidth term
// plus multiplicative log-normal jitter, all driven by a seeded RNG so runs
// are reproducible. Delays are *applied* (the receiving wait sleeps until
// the modeled delivery time), so wall-clock profiles show realistic
// communication costs through exactly the paper's call path
// (Isend/Irecv/Waitsome).

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "support/rng.hpp"

namespace mpp {

struct NetworkModel {
  /// Fixed per-message latency in microseconds (e.g. ~50us for 100Mb
  /// ethernet of the paper's era; 0 disables).
  double latency_us = 0.0;
  /// Link bandwidth in bytes/us (e.g. 12.5 bytes/us == 100 Mb/s; 0 ==
  /// infinite).
  double bandwidth_bytes_per_us = 0.0;
  /// Multiplicative jitter: delay is scaled by exp(sigma * N(0,1)).
  /// 0 disables. ~0.3 gives the paper's visible scatter.
  double jitter_sigma = 0.0;
  /// RNG seed for jitter streams (one stream per sending rank).
  std::uint64_t seed = 0x5eedULL;

  /// True when the model injects no delay at all (fast path).
  bool is_null() const {
    return latency_us <= 0.0 && bandwidth_bytes_per_us <= 0.0 && jitter_sigma <= 0.0;
  }

  /// Modeled one-way delay for a message of `bytes`, in microseconds.
  double delay_us(std::size_t bytes, ccaperf::Rng& rng) const {
    double d = latency_us;
    if (bandwidth_bytes_per_us > 0.0)
      d += static_cast<double>(bytes) / bandwidth_bytes_per_us;
    if (jitter_sigma > 0.0) d *= std::exp(jitter_sigma * rng.normal());
    return std::max(0.0, d);
  }

  /// A model approximating the paper's testbed interconnect: ~60us latency,
  /// ~100 Mb/s effective bandwidth, visible load fluctuation.
  static NetworkModel classic_cluster(std::uint64_t seed = 0x5eedULL) {
    return NetworkModel{60.0, 12.5, 0.35, seed};
  }

  /// No injected delay (unit tests, overhead benches).
  static NetworkModel null_model() { return NetworkModel{}; }
};

}  // namespace mpp
