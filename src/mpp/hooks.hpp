#pragma once
// PMPI-style interposition for the mpp fabric.
//
// Every public communication call is bracketed by `on_begin`/`on_end` on the
// hooks object installed for the calling rank (thread). The TAU adapter in
// src/tau installs hooks that start/stop timers named after the equivalent
// MPI routine ("MPI_Waitsome()", "MPI_Allreduce()", ...) in the "MPI" timer
// group — exactly how the paper obtains "the total inclusive time spent in
// MPI during a method invocation" (Section 3.2, requirement 2).
//
// Hooks are per-thread (per-rank in SCMD); installation is RAII via
// `HooksInstaller` so an exception cannot leave a dangling pointer.

#include <cstddef>
#include <cstdint>

namespace mpp {

/// One point-to-point message endpoint, reported to hooks on both sides.
/// `seq` is the fabric's per-(src,dst) ordered-pair sequence number
/// (1-based, send order): (src, dst, seq) identifies a message uniquely
/// across the whole run, which is what makes cross-rank trace matching
/// deterministic.
struct MsgEvent {
  int src = -1;            ///< sender's world rank
  int dst = -1;            ///< receiver's world rank
  int tag = 0;
  std::size_t bytes = 0;
  std::uint64_t seq = 0;
};

/// Fault taxonomy of the injection layer (see fault.hpp). `none` means the
/// message was delivered untouched.
enum class FaultKind : std::uint8_t { none, drop, delay, duplicate, reorder, stall };

/// One fault-layer event, reported to the hooks of the rank on whose thread
/// the event fired (the sender for injections, the polling rank for retries
/// and releases, the waiting rank for timeouts). (src, dst, seq) is the same
/// message identity MsgEvent carries, so a fault can be correlated with the
/// message it perturbed.
struct FaultEvent {
  enum class Type : std::uint8_t {
    injected,              ///< a fault was applied to a fresh send
    retry,                 ///< a dropped message was retransmitted
    retry_exhausted,       ///< retransmission gave up (send fails)
    duplicate_suppressed,  ///< a duplicate arrival was deduplicated
    timeout,               ///< a wait surfaced CommError instead of blocking
    stale_fallback,        ///< amr::exchange reused stale ghost data
  };
  Type type = Type::injected;
  FaultKind kind = FaultKind::none;  ///< which fault, for `injected`
  int src = -1;                      ///< sender world rank (-1 if n/a)
  int dst = -1;                      ///< receiver world rank (-1 if n/a)
  std::uint64_t seq = 0;             ///< per-(src,dst) message sequence
  std::uint32_t detail = 0;          ///< delay steps / retry attempt / stale segments
};

/// One hop of a tree-structured collective (barrier / allgather /
/// allgatherv): reported on the rank initiating the hop, inside the
/// enclosing collective's hook bracket. `op` is the outer MPI name
/// ("MPI_Allgather()", ...), `round` the 0-based algorithm round, `peer`
/// the world rank the payload is handed to, `bytes` the payload carried by
/// this hop. The aggregate per-rank hop count of a collective is
/// O(log size), which is what makes it observable that the tree path —
/// not the flat rendezvous — executed.
struct HopEvent {
  const char* op = nullptr;
  int round = 0;
  int peer = -1;
  std::size_t bytes = 0;
};

/// Interface implemented by measurement systems (see tau::MpiHookAdapter).
class CommHooks {
 public:
  virtual ~CommHooks() = default;
  /// Called on entry to a communication routine. `mpi_name` is a static
  /// string like "MPI_Isend()".
  virtual void on_begin(const char* mpi_name) = 0;
  /// Called on exit. `bytes` is the payload size where meaningful, else 0.
  virtual void on_end(const char* mpi_name, std::size_t bytes) = 0;
  /// Message endpoints: fired on the sending rank when a send is initiated
  /// (inside the MPI_Send/MPI_Isend bracket) and on the receiving rank when
  /// the matching receive completes (inside the wait/test/recv bracket).
  /// Default no-ops keep byte-counting hooks source-compatible.
  virtual void on_message_send(const MsgEvent&) {}
  virtual void on_message_recv(const MsgEvent&) {}
  /// Fault-layer event (injection, retry, timeout, staleness). Only fired
  /// when a FaultPlan is active or a wait times out; default no-op.
  virtual void on_fault(const FaultEvent&) {}
  /// Per-hop progress of a tree collective; default no-op so byte-counting
  /// adapters (and the merged-counter goldens they feed) are unaffected.
  virtual void on_collective_hop(const HopEvent&) {}
};

namespace detail {
inline thread_local CommHooks* t_hooks = nullptr;
}

/// Currently installed hooks for this thread (nullptr if none).
inline CommHooks* hooks() { return detail::t_hooks; }

/// Installs hooks for the current thread for the lifetime of this object.
class HooksInstaller {
 public:
  explicit HooksInstaller(CommHooks* h) : prev_(detail::t_hooks) { detail::t_hooks = h; }
  ~HooksInstaller() { detail::t_hooks = prev_; }
  HooksInstaller(const HooksInstaller&) = delete;
  HooksInstaller& operator=(const HooksInstaller&) = delete;

 private:
  CommHooks* prev_;
};

/// RAII bracket used inside mpp entry points.
class HookScope {
 public:
  explicit HookScope(const char* name) : name_(name), active_(detail::t_hooks != nullptr) {
    if (active_) detail::t_hooks->on_begin(name_);
  }
  ~HookScope() {
    if (active_) detail::t_hooks->on_end(name_, bytes_);
  }
  HookScope(const HookScope&) = delete;
  HookScope& operator=(const HookScope&) = delete;
  void set_bytes(std::size_t b) { bytes_ = b; }

 private:
  const char* name_;
  bool active_;
  std::size_t bytes_ = 0;
};

}  // namespace mpp
