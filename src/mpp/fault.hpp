#pragma once
// Deterministic fault injection for the mpp fabric.
//
// A FaultPlan turns a seed into a schedule of per-message faults: drop,
// delay-by-N-progress-steps, duplicate, reorder, and rank stalls. The key
// property is that decisions are *pure hashes* of the message identity
// (seed, src, dst, seq, attempt) — not draws from a shared RNG stream — so
// the schedule is independent of thread interleaving: two runs with the
// same seed inject exactly the same faults on exactly the same messages,
// which is what makes record/replay of a faulty run byte-deterministic.
//
// Time is measured in *progress steps*, not wall clock: every fabric poll
// (wait quantum, test, send) advances a global step counter, and held or
// dropped messages are released/retried at step thresholds. This keeps the
// fault schedule deterministic under scheduler noise and sanitizers.
//
// Recovery lives in Comm/Fabric (see DESIGN.md §8): dropped messages sit in
// a retry ledger and are retransmitted with exponential backoff in steps;
// duplicates are suppressed by a per-pair delivered-sequence filter; waits
// carry a configurable timeout plus an always-on no-progress bound, both of
// which surface a typed CommError instead of hanging.

#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace mpp {

enum class FaultKind : std::uint8_t;  // hooks.hpp

/// Error category for recoverable communication failures. Waits throw
/// CommError so callers (e.g. amr::exchange) can distinguish "give up and
/// degrade" from programming errors.
enum class CommErrc : std::uint8_t {
  aborted,          ///< a peer rank failed and the fabric was torn down
  timeout,          ///< a configured wait timeout expired
  no_progress,      ///< the progress bound tripped (nothing moved for too long)
  retry_exhausted,  ///< a dropped message ran out of retransmission attempts
};

class CommError : public ccaperf::Error {
 public:
  CommError(CommErrc code, const std::string& what)
      : ccaperf::Error(what), code_(code) {}
  CommErrc code() const { return code_; }

 private:
  CommErrc code_;
};

/// Fault rates and recovery tuning. Rates are per fresh message and must
/// sum to <= 1; all-zero rates mean the plan is inactive and the fabric
/// runs its unmodified fast path.
struct FaultSpec {
  std::uint64_t seed = 0xFA57C0DEULL;
  double drop = 0.0;       ///< P(message is lost; recovered by retransmission)
  double delay = 0.0;      ///< P(message is held for 1..max_delay_steps polls)
  double duplicate = 0.0;  ///< P(message arrives twice; dedupe filters it)
  double reorder = 0.0;    ///< P(message is overtaken by the pair's next message)
  double stall = 0.0;      ///< P(a send briefly stalls its rank for stall_us)
  int max_delay_steps = 4;
  double stall_us = 100.0;
  /// Retransmission: attempt k is re-sent retry_base_steps << (k-1) polls
  /// after the previous loss, up to retry_max_attempts total attempts.
  int retry_base_steps = 2;
  int retry_max_attempts = 8;
  /// When true, retransmissions are themselves subject to drop faults
  /// (realistic chaos); when false the first retry always delivers
  /// (loss-free, used by the determinism property tests).
  bool retry_faults = true;

  /// True when any fault can ever fire.
  bool any() const {
    return drop > 0.0 || delay > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           stall > 0.0;
  }

  /// The preset used by the chaos soak: lossy but always recoverable.
  static FaultSpec moderate(std::uint64_t seed = 0xFA57C0DEULL);
  /// Parses "drop=0.1,delay=0.2,dup=0.05,reorder=0.05,stall=0.02,..." or
  /// the presets "moderate" / "off". Unknown keys raise.
  static FaultSpec parse(std::string_view text);
  /// Reads CCAPERF_FAULT_PLAN (parse() syntax) and CCAPERF_FAULT_SEED.
  /// Returns an inactive spec when the plan variable is unset/empty.
  static FaultSpec from_env();
};

/// The decision for one (message, attempt).
struct FaultDecision {
  FaultKind kind;
  int delay_steps = 0;  ///< for FaultKind::delay
};

/// A seeded, stateless fault schedule. Copyable; all methods are const and
/// thread-safe (pure functions of the spec).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec), active_(spec.any()) {}

  bool active() const { return active_; }
  const FaultSpec& spec() const { return spec_; }

  /// Fault decision for delivery attempt `attempt` (1-based) of message
  /// (src, dst, seq). Attempts >= 2 are retransmissions: only `drop` can
  /// re-fire on them (and only when spec().retry_faults).
  FaultDecision decide(int src, int dst, std::uint64_t seq,
                       std::uint32_t attempt) const;

  /// True when the `check`-th stall probe on `rank` (a per-rank counter
  /// maintained by the fabric) should stall.
  bool stall_at(int rank, std::uint64_t check) const;

 private:
  FaultSpec spec_;
  bool active_ = false;
};

/// Aggregate fault/recovery accounting, mirrored from the fabric's atomics.
/// `injected_*` count faults applied to fresh sends; the rest count what the
/// recovery machinery did about them.
struct FaultStats {
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_reorders = 0;
  std::uint64_t injected_stalls = 0;
  std::uint64_t retries = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t stale_fallbacks = 0;
  /// Delivery-state gauges (see detail::DedupeWindow): the largest
  /// out-of-order span any duplicate filter ever buffered (bits; bounded
  /// by DedupeWindow::kMaxWindowBits), the smallest watermark among
  /// sources that delivered at least one message (nonzero == every filter
  /// advanced past its first message instead of accumulating history),
  /// and the peak number of in-flight captured messages in the fault
  /// store (what a progress poll's cost now tracks).
  std::uint64_t dedupe_span_peak = 0;
  std::uint64_t dedupe_watermark_min = 0;
  std::uint64_t fault_items_peak = 0;

  std::uint64_t injected_total() const {
    return injected_drops + injected_delays + injected_duplicates +
           injected_reorders + injected_stalls;
  }
};

}  // namespace mpp
