#include "mpp/fault.hpp"

#include <cctype>
#include <cstdlib>

#include "mpp/hooks.hpp"
#include "support/rng.hpp"

namespace mpp {

namespace {

/// Hash chain over the message identity: every field perturbs the state and
/// every draw is a fresh splitmix64 step. Pure function — no shared stream.
std::uint64_t fold(std::uint64_t state, std::uint64_t v) {
  state ^= v + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
  return ccaperf::splitmix64(state);
}

double u01(std::uint64_t& state) {
  return static_cast<double>(ccaperf::splitmix64(state) >> 11) * 0x1.0p-53;
}

double parse_number(std::string_view key, std::string_view value) {
  CCAPERF_REQUIRE(!value.empty(), "FaultSpec::parse: empty value");
  char* end = nullptr;
  const std::string owned(value);
  const double v = std::strtod(owned.c_str(), &end);
  CCAPERF_REQUIRE(end == owned.c_str() + owned.size(),
                  "FaultSpec::parse: bad number for key " + std::string(key));
  return v;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

}  // namespace

FaultSpec FaultSpec::moderate(std::uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.drop = 0.10;
  s.delay = 0.20;
  s.duplicate = 0.05;
  s.reorder = 0.05;
  s.stall = 0.02;
  s.max_delay_steps = 4;
  s.stall_us = 100.0;
  return s;
}

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec s;
  const std::string_view whole = trim(text);
  if (whole.empty() || whole == "off" || whole == "none" || whole == "0") return s;
  if (whole == "moderate") return moderate();

  std::string_view rest = whole;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = trim(rest.substr(0, comma));
    rest = (comma == std::string_view::npos) ? std::string_view{}
                                             : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    CCAPERF_REQUIRE(eq != std::string_view::npos,
                    "FaultSpec::parse: expected key=value, got " + std::string(item));
    const std::string_view key = trim(item.substr(0, eq));
    const std::string_view value = trim(item.substr(eq + 1));
    if (key == "seed")
      s.seed = static_cast<std::uint64_t>(parse_number(key, value));
    else if (key == "drop")
      s.drop = parse_number(key, value);
    else if (key == "delay")
      s.delay = parse_number(key, value);
    else if (key == "dup" || key == "duplicate")
      s.duplicate = parse_number(key, value);
    else if (key == "reorder")
      s.reorder = parse_number(key, value);
    else if (key == "stall")
      s.stall = parse_number(key, value);
    else if (key == "max_delay_steps")
      s.max_delay_steps = static_cast<int>(parse_number(key, value));
    else if (key == "stall_us")
      s.stall_us = parse_number(key, value);
    else if (key == "retry_base_steps")
      s.retry_base_steps = static_cast<int>(parse_number(key, value));
    else if (key == "retry_max_attempts")
      s.retry_max_attempts = static_cast<int>(parse_number(key, value));
    else if (key == "retry_faults")
      s.retry_faults = parse_number(key, value) != 0.0;
    else
      ccaperf::raise("FaultSpec::parse: unknown key " + std::string(key));
  }
  CCAPERF_REQUIRE(s.drop >= 0 && s.delay >= 0 && s.duplicate >= 0 &&
                      s.reorder >= 0 && s.stall >= 0 &&
                      s.drop + s.delay + s.duplicate + s.reorder <= 1.0,
                  "FaultSpec::parse: rates must be >= 0 and sum to <= 1");
  CCAPERF_REQUIRE(s.max_delay_steps >= 1 && s.retry_base_steps >= 1 &&
                      s.retry_max_attempts >= 1,
                  "FaultSpec::parse: steps/attempts must be >= 1");
  return s;
}

FaultSpec FaultSpec::from_env() {
  const char* plan = std::getenv("CCAPERF_FAULT_PLAN");
  if (plan == nullptr) return FaultSpec{};
  FaultSpec s = parse(plan);
  if (const char* seed = std::getenv("CCAPERF_FAULT_SEED"))
    s.seed = std::strtoull(seed, nullptr, 0);
  return s;
}

FaultDecision FaultPlan::decide(int src, int dst, std::uint64_t seq,
                                std::uint32_t attempt) const {
  if (!active_) return {FaultKind::none, 0};
  std::uint64_t state = spec_.seed;
  state = fold(state, 0x6d657373ULL);  // domain tag: "mess"
  state = fold(state, static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  state = fold(state, static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  state = fold(state, seq);
  state = fold(state, attempt);
  const double u = u01(state);
  if (attempt > 1) {
    // Retransmission: only loss can re-fire, and only when configured.
    if (spec_.retry_faults && u < spec_.drop) return {FaultKind::drop, 0};
    return {FaultKind::none, 0};
  }
  double edge = spec_.drop;
  if (u < edge) return {FaultKind::drop, 0};
  edge += spec_.delay;
  if (u < edge) {
    const int steps = 1 + static_cast<int>(u01(state) *
                                           static_cast<double>(spec_.max_delay_steps));
    return {FaultKind::delay, steps < spec_.max_delay_steps ? steps
                                                            : spec_.max_delay_steps};
  }
  edge += spec_.duplicate;
  if (u < edge) return {FaultKind::duplicate, 0};
  edge += spec_.reorder;
  if (u < edge) return {FaultKind::reorder, 0};
  return {FaultKind::none, 0};
}

bool FaultPlan::stall_at(int rank, std::uint64_t check) const {
  if (!active_ || spec_.stall <= 0.0) return false;
  std::uint64_t state = spec_.seed;
  state = fold(state, 0x7374616cULL);  // domain tag: "stal"
  state = fold(state, static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)));
  state = fold(state, check);
  return u01(state) < spec_.stall;
}

}  // namespace mpp
