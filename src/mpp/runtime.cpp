#include "mpp/runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/log.hpp"

namespace mpp {

namespace {

/// Applies the environment knobs on top of caller-provided options, so a
/// driver like bench_fig01_simulation can run under a fault plan without
/// any plumbing of its own.
RunOptions with_env(RunOptions opts) {
  const FaultSpec env_faults = FaultSpec::from_env();
  if (env_faults.any()) opts.faults = env_faults;
  if (const char* env = std::getenv("CCAPERF_WAIT_TIMEOUT_MS"))
    opts.wait_timeout_us = std::atof(env) * 1e3;
  if (const char* env = std::getenv("CCAPERF_WAIT_IDLE_MS"))
    opts.idle_limit_us = std::atof(env) * 1e3;
  return opts;
}

}  // namespace

void Runtime::run(int nranks, const RunOptions& options,
                  const std::function<void(Comm&)>& rank_main) {
  CCAPERF_REQUIRE(nranks >= 1, "Runtime::run: need at least one rank");
  CCAPERF_REQUIRE(rank_main != nullptr, "Runtime::run: null rank_main");

  const RunOptions opts = with_env(options);
  Fabric fabric(nranks, opts.net);
  fabric.set_fault_spec(opts.faults);
  fabric.set_wait_timeout_us(opts.wait_timeout_us);
  fabric.set_idle_limit_us(opts.idle_limit_us);
  auto members = std::make_shared<std::vector<int>>();
  for (int r = 0; r < nranks; ++r) members->push_back(r);

  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&](int rank) {
    Comm world(&fabric, Fabric::world_context, members, rank);
    try {
      rank_main(world);
    } catch (...) {
      {
        std::scoped_lock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      CCAPERF_LOG(error, rank) << "rank terminated with an exception";
      // Wake every blocked peer: their waits/collectives throw instead of
      // deadlocking, and the first exception is rethrown after the join.
      fabric.abort();
    }
  };

  // Optional deadlock watchdog: CCAPERF_WATCHDOG_SECONDS=N makes a stuck
  // run abort after N seconds, turning every blocked wait/collective into
  // an exception that names the blocked call instead of hanging forever.
  std::thread watchdog;
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool finished = false;
  if (const char* env = std::getenv("CCAPERF_WATCHDOG_SECONDS")) {
    const int seconds = std::atoi(env);
    if (seconds > 0) {
      watchdog = std::thread([&, seconds] {
        std::unique_lock lock(watchdog_mu);
        if (!watchdog_cv.wait_for(lock, std::chrono::seconds(seconds),
                                  [&] { return finished; })) {
          CCAPERF_LOG(error, -1) << "watchdog: aborting fabric after "
                                 << seconds << "s";
          fabric.abort();
        }
      });
    }
  }

  if (nranks == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }
  if (watchdog.joinable()) {
    {
      std::scoped_lock lock(watchdog_mu);
      finished = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mpp
