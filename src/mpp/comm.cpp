#include "mpp/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>

namespace mpp {

namespace {

Clock::time_point stamp_delay(double delay_us) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double, std::micro>(delay_us));
}

void sleep_us(double us) {
  if (us > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == any_source || want_src == src) &&
         (want_tag == any_tag || want_tag == tag);
}

/// Fires the receive-side message hook for a completed receive. Called at
/// the completion sites (wait/test/waitsome), inside their hook brackets,
/// so trace events land within the enclosing MPI slice.
void emit_recv_event(const detail::ReqState& st) {
  if (st.kind != detail::ReqState::Kind::recv || st.src_world < 0) return;
  if (CommHooks* h = hooks())
    h->on_message_recv(MsgEvent{st.src_world, st.dst_world, st.status.tag,
                                st.status.bytes, st.seq});
}

/// Fires the send-side message hook once a send has been handed to the
/// fabric (identity fields stamped by Comm::deliver).
void emit_send_event(const detail::ReqState& st) {
  if (st.src_world < 0) return;
  if (CommHooks* h = hooks())
    h->on_message_send(MsgEvent{st.src_world, st.dst_world, st.status.tag,
                                st.status.bytes, st.seq});
}

[[noreturn]] void raise_failed(const detail::ReqState& st, const char* what) {
  const auto code = static_cast<CommErrc>(
      st.failed.load(std::memory_order_acquire) - 1);
  throw CommError(code, std::string("mpp: ") + what +
                            ": send failed (retransmission attempts exhausted)");
}

/// Book-keeping for one blocking wait: drives the fault layer each quantum
/// and enforces the configured timeout plus the always-on no-progress bound
/// so a wait for a message that never arrives fails instead of hanging.
class WaitBudget {
 public:
  explicit WaitBudget(Fabric* fab) : fab_(fab) {
    if (fab_ != nullptr) last_activity_ = fab_->activity();
  }

  /// How long to block on the condition variable before polling again.
  Clock::duration quantum() const {
    using std::chrono::duration_cast;
    if (fab_ != nullptr && fab_->faults_active())
      return duration_cast<Clock::duration>(std::chrono::microseconds(200));
    return duration_cast<Clock::duration>(std::chrono::milliseconds(10));
  }

  /// One poll: advance the fault layer, then check the two bounds. Must be
  /// called with no signal/mailbox lock held (fault_poll takes both).
  void poll_and_check(const char* what) {
    if (fab_ == nullptr) return;
    fab_->fault_poll();
    const Clock::time_point now = Clock::now();
    const double timeout_us = fab_->wait_timeout_us();
    if (timeout_us > 0.0 &&
        std::chrono::duration<double, std::micro>(now - start_).count() >
            timeout_us) {
      fab_->count_timeout();
      if (CommHooks* h = hooks())
        h->on_fault(FaultEvent{FaultEvent::Type::timeout, FaultKind::none, -1,
                               -1, 0, 0});
      throw CommError(CommErrc::timeout,
                      std::string("mpp: ") + what + ": timed out after " +
                          std::to_string(timeout_us) + " us");
    }
    const std::uint64_t activity = fab_->activity();
    if (activity != last_activity_) {
      last_activity_ = activity;
      activity_at_ = now;
      return;
    }
    const double idle_us = fab_->idle_limit_us();
    if (idle_us > 0.0 &&
        std::chrono::duration<double, std::micro>(now - activity_at_).count() >
            idle_us) {
      fab_->count_timeout();
      if (CommHooks* h = hooks())
        h->on_fault(FaultEvent{FaultEvent::Type::timeout, FaultKind::none, -1,
                               -1, 0, 0});
      throw CommError(CommErrc::no_progress,
                      std::string("mpp: ") + what +
                          ": no fabric progress for " +
                          std::to_string(idle_us) + " us");
    }
  }

 private:
  Fabric* fab_;
  Clock::time_point start_ = Clock::now();
  Clock::time_point activity_at_ = start_;
  std::uint64_t last_activity_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

Status Request::wait_no_hook() {
  CCAPERF_REQUIRE(state_, "Request::wait on an invalid request");
  detail::ReqState& st = *state_;
  if (!st.matched.load(std::memory_order_acquire)) {
    // Bounded quanta instead of an open-ended block: each expiry drives the
    // fault layer and checks the timeout / no-progress bounds, so a message
    // that never arrives surfaces a CommError instead of hanging.
    WaitBudget budget(st.fabric);
    for (;;) {
      {
        std::unique_lock lock(st.signal->mu);
        st.signal->cv.wait_for(lock, budget.quantum(), [&st] {
          return st.matched.load(std::memory_order_acquire) || st.aborted() ||
                 st.failed.load(std::memory_order_acquire) != 0;
        });
      }
      if (st.matched.load(std::memory_order_acquire)) break;
      if (st.failed.load(std::memory_order_acquire) != 0)
        raise_failed(st, "wait");
      if (st.aborted())
        throw CommError(CommErrc::aborted,
                        "mpp: wait aborted (a peer rank failed)");
      budget.poll_and_check("wait");
    }
  }
  const auto now = Clock::now();
  if (now < st.deliver_at) std::this_thread::sleep_until(st.deliver_at);
  Status result = st.status;
  emit_recv_event(st);
  state_.reset();
  return result;
}

Status Request::wait() {
  HookScope hook("MPI_Wait()");
  Status s = wait_no_hook();
  hook.set_bytes(s.bytes);
  return s;
}

std::optional<Status> Request::test() {
  HookScope hook("MPI_Test()");
  if (state_ && state_->failed.load(std::memory_order_acquire) != 0)
    raise_failed(*state_, "test");
  if (!state_ || !state_->ready()) {
    // test() is the progress engine of spin loops: drive the fault layer so
    // held/dropped messages can still move while the caller polls.
    if (state_ && state_->fabric != nullptr) state_->fabric->fault_poll();
    return std::nullopt;
  }
  Status s = state_->status;
  hook.set_bytes(s.bytes);
  emit_recv_event(*state_);
  state_.reset();
  return s;
}

void Request::release() {
  // Dropping the (unique) handle to an unmatched operation must remove its
  // mailbox entry, so the fabric does not later read/write through a
  // pointer into memory the caller may have freed: a posted receive for
  // recv requests, a parked rendezvous descriptor for send requests.
  // Re-check `matched` under the mailbox lock: the peer matches under the
  // same lock.
  if (!state_) return;
  detail::ReqState& st = *state_;
  if (st.mailbox != nullptr && !st.matched.load(std::memory_order_acquire)) {
    std::scoped_lock lock(st.mailbox->mu);
    if (!st.matched.load(std::memory_order_acquire)) {
      if (st.kind == detail::ReqState::Kind::recv) {
        auto& posted = st.mailbox->posted;
        for (auto it = posted.begin(); it != posted.end(); ++it) {
          if (it->post_id == st.post_id) {
            posted.erase(it);
            break;
          }
        }
      } else {
        auto& unexpected = st.mailbox->unexpected;
        for (auto it = unexpected.begin(); it != unexpected.end(); ++it) {
          if (it->rdv_send != nullptr && it->park_id == st.post_id) {
            unexpected.erase(it);
            break;
          }
        }
      }
    }
  }
  state_.reset();
}

std::size_t wait_some(std::span<Request> reqs, std::vector<int>& indices,
                      std::vector<Status>* statuses) {
  HookScope hook("MPI_Waitsome()");
  indices.clear();
  if (statuses) statuses->clear();

  detail::RankSignal* signal = nullptr;
  bool any_valid = false;
  for (const Request& r : reqs) {
    if (r.state_) {
      any_valid = true;
      if (r.state_->signal != nullptr) signal = r.state_->signal;
    }
  }
  if (!any_valid) return 0;

  std::size_t total_bytes = 0;
  // Classifies every request against a SINGLE time sample: requests whose
  // modeled delivery time has passed complete; matched-but-undelivered
  // ones bound the sleep. Using one `now` for both decisions is essential:
  // with two samples a request can fall between "not ready yet" and "no
  // longer pending", leaving the thread in an unbounded wait that no
  // future notification ends.
  Clock::time_point nearest;
  auto harvest = [&]() -> bool {
    nearest = Clock::time_point::max();
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto& st = reqs[i].state_;
      if (!st || !st->matched.load(std::memory_order_acquire)) continue;
      if (st->deliver_at <= now) {
        indices.push_back(static_cast<int>(i));
        if (statuses) statuses->push_back(st->status);
        total_bytes += st->status.bytes;
        emit_recv_event(*st);
        st.reset();
      } else {
        nearest = std::min(nearest, st->deliver_at);
      }
    }
    return !indices.empty();
  };

  // Sends (and already-arrived receives) complete immediately.
  if (harvest()) {
    hook.set_bytes(total_bytes);
    return indices.size();
  }

  CCAPERF_REQUIRE(signal != nullptr, "wait_some: receive request without owner signal");
  Fabric* fab = nullptr;
  for (const Request& r : reqs) {
    if (r.state_ && r.state_->fabric != nullptr) {
      fab = r.state_->fabric;
      break;
    }
  }
  WaitBudget budget(fab);
  for (;;) {
    {
      std::unique_lock lock(signal->mu);
      if (harvest()) break;
      for (const Request& r : reqs) {
        if (!r.state_) continue;
        if (r.state_->failed.load(std::memory_order_acquire) != 0)
          raise_failed(*r.state_, "wait_some");
        if (r.state_->aborted())
          throw CommError(CommErrc::aborted,
                          "mpp: wait_some aborted (a peer rank failed)");
      }
      Clock::time_point until = Clock::now() + budget.quantum();
      if (nearest != Clock::time_point::max()) until = std::min(until, nearest);
      signal->cv.wait_until(lock, until);
      if (harvest()) break;
    }
    budget.poll_and_check("wait_some");
  }
  hook.set_bytes(total_bytes);
  return indices.size();
}

void wait_all(std::span<Request> reqs) {
  HookScope hook("MPI_Waitall()");
  std::size_t total = 0;
  for (Request& r : reqs) {
    if (!r.state_) continue;
    Status s = r.wait_no_hook();
    total += s.bytes;
  }
  hook.set_bytes(total);
}

// ---------------------------------------------------------------------------
// Point to point
// ---------------------------------------------------------------------------

std::shared_ptr<detail::ReqState> Comm::make_send_state(int tag, std::size_t bytes) {
  auto st = std::make_shared<detail::ReqState>();
  st->kind = detail::ReqState::Kind::send;
  st->status = Status{group_rank_, tag, bytes};
  st->signal = &fabric_->signal(my_world_rank());
  st->abort_flag = fabric_->abort_flag();
  st->fabric = fabric_;
  return st;
}

void Comm::report_stale_fallback(std::size_t segments) {
  fabric_->count_stale_fallback();
  if (CommHooks* h = hooks())
    h->on_fault(FaultEvent{FaultEvent::Type::stale_fallback, FaultKind::none,
                           -1, my_world_rank(), 0,
                           static_cast<std::uint32_t>(segments)});
}

void Comm::deliver(int dest, int tag, const void* data, std::size_t bytes,
                   const std::shared_ptr<detail::ReqState>& sender) {
  if (fabric_->faults_active()) {
    deliver_faulty(dest, tag, data, bytes, sender);
    return;
  }
  const double delay = fabric_->delay_us(my_world_rank(), bytes);
  const Clock::time_point deliver_at = stamp_delay(delay);

  // Message identity for hooks/tracing: stamped on the sender state before
  // it is shared, copied to the receiver state at match time (under the
  // mailbox lock / before the matched release-store).
  const int src_w = my_world_rank();
  const int dst_w = world_rank_of(dest);
  sender->src_world = src_w;
  sender->dst_world = dst_w;
  sender->seq = fabric_->next_pair_seq(src_w, dst_w);

  detail::Mailbox& mb = fabric_->mailbox(context_, dest);
  std::shared_ptr<detail::ReqState> completed;
  bool rendezvous = false;
  {
    std::scoped_lock lock(mb.mu);
    for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
      if (matches(it->src, it->tag, group_rank_, tag)) {
        CCAPERF_REQUIRE(bytes <= it->capacity,
                        "message truncation: receive buffer too small");
        if (bytes > 0) std::memcpy(it->buffer, data, bytes);
        it->state->status = Status{group_rank_, tag, bytes};
        it->state->deliver_at = deliver_at;
        it->state->src_world = src_w;
        it->state->dst_world = dst_w;
        it->state->seq = sender->seq;
        completed = it->state;
        mb.posted.erase(it);
        break;
      }
    }
    if (!completed) {
      detail::ParkedMessage msg;
      msg.src = group_rank_;
      msg.tag = tag;
      msg.deliver_at = deliver_at;
      msg.src_world = src_w;
      msg.dst_world = dst_w;
      msg.seq = sender->seq;
      if (bytes >= Fabric::kRendezvousBytes) {
        // Rendezvous: park a descriptor into the sender's buffer; the
        // matching receive copies once and completes the send.
        msg.rdv_data = static_cast<const std::byte*>(data);
        msg.rdv_bytes = bytes;
        msg.rdv_send = sender;
        msg.park_id = mb.next_post_id++;
        sender->mailbox = &mb;
        sender->post_id = msg.park_id;
        rendezvous = true;
      } else if (bytes > 0) {
        msg.payload = fabric_->pool().acquire(bytes);
        std::memcpy(msg.payload.data(), data, bytes);
      }
      mb.unexpected.push_back(std::move(msg));
    }
  }
  if (!rendezvous)
    sender->matched.store(true, std::memory_order_release);  // buffered-eager
  fabric_->note_activity();
  if (completed) {
    completed->matched.store(true, std::memory_order_release);
    fabric_->signal(world_rank_of(dest)).notify();
  }
}

void Comm::deliver_faulty(int dest, int tag, const void* data, std::size_t bytes,
                          const std::shared_ptr<detail::ReqState>& sender) {
  // Sends drive fault-layer progress too, so a pure send phase still
  // releases earlier held messages deterministically.
  fabric_->fault_poll();
  fabric_->maybe_stall(my_world_rank());

  const double delay = fabric_->delay_us(my_world_rank(), bytes);
  const Clock::time_point deliver_at = stamp_delay(delay);
  const int src_w = my_world_rank();
  const int dst_w = world_rank_of(dest);
  sender->src_world = src_w;
  sender->dst_world = dst_w;
  sender->seq = fabric_->next_pair_seq(src_w, dst_w);

  detail::ParkedMessage msg;
  msg.src = group_rank_;
  msg.tag = tag;
  msg.deliver_at = deliver_at;
  msg.src_world = src_w;
  msg.dst_world = dst_w;
  msg.seq = sender->seq;
  if (bytes > 0) {
    // Always a staged copy: the message may outlive this call in the hold
    // queue or retry ledger, so zero-copy rendezvous is off the table.
    msg.payload = fabric_->pool().acquire(bytes);
    std::memcpy(msg.payload.data(), data, bytes);
  }
  // Rendezvous-class messages keep the sender attached: the send completes
  // ("is acknowledged") only when a receive matches, and retry exhaustion
  // fails it with CommErrc::retry_exhausted.
  const bool reliable = bytes >= Fabric::kRendezvousBytes;
  if (reliable) msg.rdv_send = sender;

  // Dedupe stream position: contiguous per (context, source, destination
  // mailbox), unlike the global pair sequence, which interleaves every
  // context of the rank pair. The destination's DedupeWindow watermarks
  // this stream; duplicates and retries reuse the value assigned here.
  {
    detail::Mailbox& mb = fabric_->mailbox(context_, dest);
    std::scoped_lock lock(mb.mu);
    msg.dseq = ++mb.dedupe_next[src_w];
  }

  const FaultDecision d =
      fabric_->fault_plan().decide(src_w, dst_w, sender->seq, 1);
  switch (d.kind) {
    case FaultKind::none:
      fabric_->route(context_, dest, dst_w, std::move(msg));
      break;
    case FaultKind::drop:
      fabric_->injected_drops_.fetch_add(1, std::memory_order_relaxed);
      Fabric::fire_fault(FaultEvent{FaultEvent::Type::injected, FaultKind::drop,
                                    src_w, dst_w, sender->seq, 0});
      fabric_->fault_lose(context_, dest, dst_w, std::move(msg));
      break;
    case FaultKind::delay:
      fabric_->injected_delays_.fetch_add(1, std::memory_order_relaxed);
      Fabric::fire_fault(FaultEvent{FaultEvent::Type::injected, FaultKind::delay,
                                    src_w, dst_w, sender->seq,
                                    static_cast<std::uint32_t>(d.delay_steps)});
      fabric_->fault_hold(context_, dest, dst_w, std::move(msg), d.delay_steps,
                          false);
      break;
    case FaultKind::duplicate: {
      fabric_->injected_duplicates_.fetch_add(1, std::memory_order_relaxed);
      Fabric::fire_fault(FaultEvent{FaultEvent::Type::injected,
                                    FaultKind::duplicate, src_w, dst_w,
                                    sender->seq, 0});
      detail::ParkedMessage clone;
      clone.src = msg.src;
      clone.tag = msg.tag;
      clone.deliver_at = msg.deliver_at;
      clone.src_world = msg.src_world;
      clone.dst_world = msg.dst_world;
      clone.seq = msg.seq;  // same identity: the dedupe filter's job
      clone.dseq = msg.dseq;
      if (!msg.payload.empty()) {
        clone.payload = fabric_->pool().acquire(msg.payload.size());
        std::memcpy(clone.payload.data(), msg.payload.data(), msg.payload.size());
      }
      fabric_->route(context_, dest, dst_w, std::move(msg));
      fabric_->fault_hold(context_, dest, dst_w, std::move(clone), 1, false);
      break;
    }
    case FaultKind::reorder:
      fabric_->injected_reorders_.fetch_add(1, std::memory_order_relaxed);
      Fabric::fire_fault(FaultEvent{FaultEvent::Type::injected,
                                    FaultKind::reorder, src_w, dst_w,
                                    sender->seq, 0});
      // Overtaken by the pair's next routed message, with a step-count
      // fallback so the last message of a pair is never stranded.
      fabric_->fault_hold(context_, dest, dst_w, std::move(msg),
                          fabric_->fault_plan().spec().max_delay_steps + 2, true);
      break;
    case FaultKind::stall:
      break;  // decide() never returns stall; stalls come from maybe_stall()
  }
  if (!reliable)
    sender->matched.store(true, std::memory_order_release);  // buffered-eager
}

Request Comm::isend_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  HookScope hook("MPI_Isend()");
  hook.set_bytes(bytes);
  CCAPERF_REQUIRE(valid(), "isend on invalid communicator");
  CCAPERF_REQUIRE(dest >= 0 && dest < size(), "isend: destination out of range");

  auto st = make_send_state(tag, bytes);
  deliver(dest, tag, data, bytes, st);
  emit_send_event(*st);
  return Request(std::move(st));
}

Request Comm::irecv_bytes(void* buffer, std::size_t capacity, int src, int tag) {
  HookScope hook("MPI_Irecv()");
  CCAPERF_REQUIRE(valid(), "irecv on invalid communicator");
  CCAPERF_REQUIRE(src == any_source || (src >= 0 && src < size()),
                  "irecv: source out of range");

  auto st = std::make_shared<detail::ReqState>();
  st->kind = detail::ReqState::Kind::recv;
  st->signal = &fabric_->signal(my_world_rank());
  st->abort_flag = fabric_->abort_flag();
  st->fabric = fabric_;
  detail::Mailbox& mb = fabric_->mailbox(context_, group_rank_);
  st->mailbox = &mb;
  std::shared_ptr<detail::ReqState> sender;  // rendezvous send to complete
  {
    std::scoped_lock lock(mb.mu);
    for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
      if (matches(src, tag, it->src, it->tag)) {
        // Zero-copy rendezvous descriptors read from the sender's buffer;
        // everything else (eager and fault-staged messages, which may carry
        // an attached sender too) reads from the parked payload.
        const bool zero_copy = (it->rdv_data != nullptr);
        const std::size_t msg_bytes = zero_copy ? it->rdv_bytes : it->payload.size();
        CCAPERF_REQUIRE(msg_bytes <= capacity,
                        "message truncation: receive buffer too small");
        if (zero_copy) {
          // Rendezvous: the one and only copy, sender buffer -> ours.
          std::memcpy(buffer, it->rdv_data, msg_bytes);
        } else if (msg_bytes > 0) {
          std::memcpy(buffer, it->payload.data(), msg_bytes);
          fabric_->pool().release(std::move(it->payload));
        }
        if (it->rdv_send != nullptr) {
          // The send completes now; stamp its delivery time before `matched`.
          sender = std::move(it->rdv_send);
          sender->deliver_at = it->deliver_at;
        }
        st->status = Status{it->src, it->tag, msg_bytes};
        st->deliver_at = it->deliver_at;
        st->src_world = it->src_world;
        st->dst_world = it->dst_world;
        st->seq = it->seq;
        mb.unexpected.erase(it);
        st->matched.store(true, std::memory_order_release);
        break;
      }
    }
    if (!st->matched.load(std::memory_order_relaxed)) {
      detail::PostedRecv posted;
      posted.src = src;
      posted.tag = tag;
      posted.buffer = static_cast<std::byte*>(buffer);
      posted.capacity = capacity;
      posted.post_id = mb.next_post_id++;
      st->post_id = posted.post_id;
      posted.state = st;
      mb.posted.push_back(std::move(posted));
    }
  }
  if (sender) {
    sender->matched.store(true, std::memory_order_release);
    sender->signal->notify();
  }
  // Acquire: once the recv is posted into the mailbox, a peer's deliver()
  // may write st->status and release-store `matched` concurrently, and the
  // status read below must synchronize with that store.
  if (st->matched.load(std::memory_order_acquire)) {
    fabric_->note_activity();
    hook.set_bytes(st->status.bytes);
  }
  return Request(std::move(st));
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  HookScope hook("MPI_Send()");
  hook.set_bytes(bytes);
  CCAPERF_REQUIRE(valid(), "send on invalid communicator");
  CCAPERF_REQUIRE(dest >= 0 && dest < size(), "send: destination out of range");
  auto st = make_send_state(tag, bytes);
  deliver(dest, tag, data, bytes, st);
  emit_send_event(*st);
  // Small sends are buffered and complete locally; a rendezvous send
  // blocks here until the matching receive has copied the data out.
  Request(std::move(st)).wait_no_hook();
}

Status Comm::recv_bytes(void* buffer, std::size_t capacity, int src, int tag) {
  HookScope hook("MPI_Recv()");
  // Build the receive without the MPI_Irecv hook (this *is* the MPI call).
  Request req;
  {
    HooksInstaller mute(nullptr);
    req = irecv_bytes(buffer, capacity, src, tag);
  }
  Status s = req.wait_no_hook();
  hook.set_bytes(s.bytes);
  return s;
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Comm::collective(std::size_t scratch_bytes,
                      const std::function<void(detail::CollectiveBay&, bool)>& deposit,
                      const std::function<void(detail::CollectiveBay&)>& collect,
                      std::size_t delay_bytes) const {
  CCAPERF_REQUIRE(valid(), "collective on invalid communicator");
  detail::CollectiveBay& bay = fabric_->bay(context_);
  const int n = size();
  {
    std::unique_lock lock(bay.mu);
    const std::uint64_t gen = bay.generation;
    const bool first = (bay.arrived == 0);
    if (first) {
      bay.scratch.assign(scratch_bytes, std::byte{0});
      bay.agreed_u64 = 0;
    }
    deposit(bay, first);
    ++bay.arrived;
    if (bay.arrived == n) {
      bay.complete = true;
      bay.cv.notify_all();
    } else {
      bay.cv.wait(lock, [&] {
        return (bay.complete && bay.generation == gen) || fabric_->is_aborted();
      });
      if (!bay.complete || bay.generation != gen)
        throw CommError(CommErrc::aborted,
                        "mpp: collective aborted (a peer rank failed)");
    }
    collect(bay);
    ++bay.departed;
    if (bay.departed == n) {
      bay.arrived = 0;
      bay.departed = 0;
      bay.complete = false;
      ++bay.generation;
      bay.cv.notify_all();
    } else {
      bay.cv.wait(lock,
                  [&] { return bay.generation != gen || fabric_->is_aborted(); });
      if (bay.generation == gen)
        throw CommError(CommErrc::aborted,
                        "mpp: collective aborted (a peer rank failed)");
    }
  }
  sleep_us(fabric_->delay_us(my_world_rank(), delay_bytes));
}

// --- tree collectives ------------------------------------------------------
//
// Barrier and the allgather family run over per-rank HopSlot relays instead
// of the CollectiveBay: a dissemination barrier and Bruck-style allgathers,
// both O(log n) rounds per rank for any group size (no power-of-two
// requirement). The bay serializes all n ranks through one mutex per
// operation — fine at the paper's 3 processors, quadratic-cost thundering
// herd at 256 (DESIGN.md §10). Results are byte-identical to the flat
// path, the outer MPI hook bracket is unchanged, and each rank still
// consumes exactly one modeled-delay draw per operation, so clean-run
// traces and counters match the pre-tree fabric bit for bit. Per-hop
// progress is additionally visible through CommHooks::on_collective_hop.

void Comm::hop_send(int dest_group, std::uint64_t gen, int round,
                    const void* data, std::size_t bytes, const char* op) const {
  detail::HopSlot& slot = fabric_->hop_slot(context_, dest_group);
  std::vector<std::byte> payload;
  if (bytes > 0) {
    payload = fabric_->pool().acquire(bytes);
    std::memcpy(payload.data(), data, bytes);
  }
  {
    std::scoped_lock lock(slot.mu);
    slot.arrived.emplace(std::make_pair(gen, round), std::move(payload));
    slot.cv.notify_all();
  }
  if (CommHooks* h = hooks())
    h->on_collective_hop(HopEvent{op, round, world_rank_of(dest_group), bytes});
}

std::vector<std::byte> Comm::hop_recv(std::uint64_t gen, int round,
                                      const char* op) const {
  detail::HopSlot& slot = fabric_->hop_slot(context_, group_rank_);
  const auto key = std::make_pair(gen, round);
  std::unique_lock lock(slot.mu);
  slot.cv.wait(lock, [&] {
    return slot.arrived.count(key) != 0 || fabric_->is_aborted();
  });
  auto it = slot.arrived.find(key);
  if (it == slot.arrived.end())
    throw CommError(CommErrc::aborted, std::string("mpp: ") + op +
                                           " aborted (a peer rank failed)");
  std::vector<std::byte> payload = std::move(it->second);
  slot.arrived.erase(it);
  return payload;
}

void Comm::barrier() {
  HookScope hook("MPI_Barrier()");
  CCAPERF_REQUIRE(valid(), "barrier on invalid communicator");
  const int n = size();
  if (n > 1) {
    detail::HopSlot& slot = fabric_->hop_slot(context_, group_rank_);
    const std::uint64_t gen = ++slot.generation;
    // Dissemination: in round k every rank signals (rank + 2^k) and waits
    // on (rank - 2^k); after ceil(log2 n) rounds each rank transitively
    // heard from everyone.
    int round = 0;
    for (int dist = 1; dist < n; dist <<= 1, ++round) {
      hop_send((group_rank_ + dist) % n, gen, round, nullptr, 0,
               "MPI_Barrier()");
      hop_recv(gen, round, "MPI_Barrier()");
    }
  }
  sleep_us(fabric_->delay_us(my_world_rank(), 0));
}

void Comm::barrier_flat() {
  HookScope hook("MPI_Barrier()");
  collective(0, [](detail::CollectiveBay&, bool) {}, [](detail::CollectiveBay&) {}, 0);
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  HookScope hook("MPI_Bcast()");
  hook.set_bytes(bytes);
  CCAPERF_REQUIRE(root >= 0 && root < size(), "bcast: bad root");
  const bool is_root = (group_rank_ == root);
  collective(
      bytes,
      [&](detail::CollectiveBay& bay, bool) {
        if (is_root) std::memcpy(bay.scratch.data(), data, bytes);
      },
      [&](detail::CollectiveBay& bay) {
        if (!is_root) std::memcpy(data, bay.scratch.data(), bytes);
      },
      bytes);
}

void Comm::allreduce_bytes(const void* in, void* out, std::size_t elem_bytes,
                           std::size_t count, CombineFn combine) {
  HookScope hook("MPI_Allreduce()");
  const std::size_t bytes = elem_bytes * count;
  hook.set_bytes(bytes);
  collective(
      bytes,
      [&](detail::CollectiveBay& bay, bool first) {
        if (first)
          std::memcpy(bay.scratch.data(), in, bytes);
        else
          combine(bay.scratch.data(), in, count);
      },
      [&](detail::CollectiveBay& bay) { std::memcpy(out, bay.scratch.data(), bytes); },
      bytes);
}

void Comm::reduce_bytes(const void* in, void* out, std::size_t elem_bytes,
                        std::size_t count, CombineFn combine, int root) {
  HookScope hook("MPI_Reduce()");
  const std::size_t bytes = elem_bytes * count;
  hook.set_bytes(bytes);
  CCAPERF_REQUIRE(root >= 0 && root < size(), "reduce: bad root");
  collective(
      bytes,
      [&](detail::CollectiveBay& bay, bool first) {
        if (first)
          std::memcpy(bay.scratch.data(), in, bytes);
        else
          combine(bay.scratch.data(), in, count);
      },
      [&](detail::CollectiveBay& bay) {
        if (group_rank_ == root) std::memcpy(out, bay.scratch.data(), bytes);
      },
      bytes);
}

void Comm::allgather_bytes(const void* in, std::size_t chunk_bytes, void* out) {
  HookScope hook("MPI_Allgather()");
  CCAPERF_REQUIRE(valid(), "allgather on invalid communicator");
  const std::size_t n = static_cast<std::size_t>(size());
  hook.set_bytes(chunk_bytes * n);
  if (n == 1) {
    if (chunk_bytes > 0) std::memcpy(out, in, chunk_bytes);
  } else {
    // Bruck: `acc` packs blocks in rotated order (position p holds rank
    // (me + p) % n's chunk); round k ships the first min(2^k, n - 2^k)
    // blocks to (me - 2^k) and appends the same count from (me + 2^k).
    const int ni = static_cast<int>(n);
    std::vector<std::byte> acc(chunk_bytes * n);
    if (chunk_bytes > 0) std::memcpy(acc.data(), in, chunk_bytes);
    detail::HopSlot& slot = fabric_->hop_slot(context_, group_rank_);
    const std::uint64_t gen = ++slot.generation;
    int round = 0;
    for (int dist = 1; dist < ni; dist <<= 1, ++round) {
      const std::size_t send_blocks =
          std::min<std::size_t>(static_cast<std::size_t>(dist),
                                n - static_cast<std::size_t>(dist));
      hop_send((group_rank_ - dist + ni) % ni, gen, round, acc.data(),
               send_blocks * chunk_bytes, "MPI_Allgather()");
      std::vector<std::byte> got = hop_recv(gen, round, "MPI_Allgather()");
      CCAPERF_REQUIRE(got.size() == send_blocks * chunk_bytes,
                      "allgather: hop payload size mismatch");
      if (!got.empty()) {
        std::memcpy(acc.data() + static_cast<std::size_t>(dist) * chunk_bytes,
                    got.data(), got.size());
        fabric_->pool().release(std::move(got));
      }
    }
    // Un-rotate: acc position p is rank (me + p) % n's block.
    for (std::size_t p = 0; chunk_bytes > 0 && p < n; ++p)
      std::memcpy(static_cast<std::byte*>(out) +
                      ((static_cast<std::size_t>(group_rank_) + p) % n) *
                          chunk_bytes,
                  acc.data() + p * chunk_bytes, chunk_bytes);
  }
  sleep_us(fabric_->delay_us(my_world_rank(), chunk_bytes * n));
}

void Comm::allgather_bytes_flat(const void* in, std::size_t chunk_bytes,
                                void* out) {
  HookScope hook("MPI_Allgather()");
  const std::size_t n = static_cast<std::size_t>(size());
  hook.set_bytes(chunk_bytes * n);
  collective(
      chunk_bytes * n,
      [&](detail::CollectiveBay& bay, bool) {
        std::memcpy(bay.scratch.data() +
                        static_cast<std::size_t>(group_rank_) * chunk_bytes,
                    in, chunk_bytes);
      },
      [&](detail::CollectiveBay& bay) {
        std::memcpy(out, bay.scratch.data(), chunk_bytes * n);
      },
      chunk_bytes * n);
}

void Comm::gather_bytes(const void* in, std::size_t chunk_bytes, void* out, int root) {
  HookScope hook("MPI_Gather()");
  const std::size_t n = static_cast<std::size_t>(size());
  hook.set_bytes(chunk_bytes * n);
  CCAPERF_REQUIRE(root >= 0 && root < size(), "gather: bad root");
  collective(
      chunk_bytes * n,
      [&](detail::CollectiveBay& bay, bool) {
        std::memcpy(bay.scratch.data() +
                        static_cast<std::size_t>(group_rank_) * chunk_bytes,
                    in, chunk_bytes);
      },
      [&](detail::CollectiveBay& bay) {
        if (group_rank_ == root)
          std::memcpy(out, bay.scratch.data(), chunk_bytes * n);
      },
      chunk_bytes * n);
}

void Comm::allgatherv_bytes(const void* in, std::size_t my_bytes, void* out,
                            std::span<const std::size_t> byte_counts) {
  HookScope hook("MPI_Allgatherv()");
  CCAPERF_REQUIRE(valid(), "allgatherv on invalid communicator");
  const std::size_t n = static_cast<std::size_t>(size());
  CCAPERF_REQUIRE(byte_counts.size() == n, "allgatherv: need one count per rank");
  CCAPERF_REQUIRE(byte_counts[static_cast<std::size_t>(group_rank_)] == my_bytes,
                  "allgatherv: my_bytes disagrees with byte_counts");
  std::size_t total = 0;
  for (std::size_t r = 0; r < n; ++r) total += byte_counts[r];
  hook.set_bytes(total);
  if (n == 1) {
    if (my_bytes > 0) std::memcpy(out, in, my_bytes);
  } else {
    // Bruck with variable block sizes: every rank knows every count, so
    // the rotated packing offsets (`roff`) and per-hop byte counts are
    // computed locally. Position p of `acc` holds rank (me + p) % n's
    // block, which keeps each round's send a contiguous prefix.
    const int ni = static_cast<int>(n);
    const auto me = static_cast<std::size_t>(group_rank_);
    std::vector<std::size_t> roff(n + 1, 0);
    for (std::size_t p = 0; p < n; ++p)
      roff[p + 1] = roff[p] + byte_counts[(me + p) % n];
    std::vector<std::byte> acc(total);
    if (my_bytes > 0) std::memcpy(acc.data(), in, my_bytes);
    detail::HopSlot& slot = fabric_->hop_slot(context_, group_rank_);
    const std::uint64_t gen = ++slot.generation;
    int round = 0;
    for (int dist = 1; dist < ni; dist <<= 1, ++round) {
      const std::size_t send_blocks =
          std::min<std::size_t>(static_cast<std::size_t>(dist),
                                n - static_cast<std::size_t>(dist));
      // I receive from (me + dist) its rotated prefix, which lands as my
      // blocks [dist, dist + send_blocks): my expected byte count equals
      // my own rotated span for those positions.
      const std::size_t expect =
          roff[static_cast<std::size_t>(dist) + send_blocks] -
          roff[static_cast<std::size_t>(dist)];
      hop_send((group_rank_ - dist + ni) % ni, gen, round, acc.data(),
               roff[send_blocks], "MPI_Allgatherv()");
      std::vector<std::byte> got = hop_recv(gen, round, "MPI_Allgatherv()");
      CCAPERF_REQUIRE(got.size() == expect,
                      "allgatherv: hop payload size mismatch");
      if (!got.empty()) {
        std::memcpy(acc.data() + roff[static_cast<std::size_t>(dist)],
                    got.data(), got.size());
        fabric_->pool().release(std::move(got));
      }
    }
    // Un-rotate into rank order.
    std::vector<std::size_t> off(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) off[r + 1] = off[r] + byte_counts[r];
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t r = (me + p) % n;
      if (byte_counts[r] > 0)
        std::memcpy(static_cast<std::byte*>(out) + off[r], acc.data() + roff[p],
                    byte_counts[r]);
    }
  }
  sleep_us(fabric_->delay_us(my_world_rank(), total));
}

void Comm::allgatherv_bytes_flat(const void* in, std::size_t my_bytes, void* out,
                                 std::span<const std::size_t> byte_counts) {
  HookScope hook("MPI_Allgatherv()");
  CCAPERF_REQUIRE(byte_counts.size() == static_cast<std::size_t>(size()),
                  "allgatherv: need one count per rank");
  CCAPERF_REQUIRE(byte_counts[static_cast<std::size_t>(group_rank_)] == my_bytes,
                  "allgatherv: my_bytes disagrees with byte_counts");
  std::size_t total = 0, my_offset = 0;
  for (std::size_t r = 0; r < byte_counts.size(); ++r) {
    if (r == static_cast<std::size_t>(group_rank_)) my_offset = total;
    total += byte_counts[r];
  }
  hook.set_bytes(total);
  collective(
      total,
      [&](detail::CollectiveBay& bay, bool) {
        std::memcpy(bay.scratch.data() + my_offset, in, my_bytes);
      },
      [&](detail::CollectiveBay& bay) {
        std::memcpy(out, bay.scratch.data(), total);
      },
      total);
}

void Comm::alltoall_bytes(const void* in, std::size_t chunk_bytes, void* out) {
  HookScope hook("MPI_Alltoall()");
  const std::size_t n = static_cast<std::size_t>(size());
  hook.set_bytes(chunk_bytes * n);
  const std::size_t row = chunk_bytes * n;
  collective(
      row * n,
      [&](detail::CollectiveBay& bay, bool) {
        // Rank r deposits its outgoing row r: chunks destined to each rank.
        std::memcpy(bay.scratch.data() + static_cast<std::size_t>(group_rank_) * row,
                    in, row);
      },
      [&](detail::CollectiveBay& bay) {
        // Rank r collects column r: the chunk each rank addressed to it.
        for (std::size_t s = 0; s < n; ++s)
          std::memcpy(static_cast<std::byte*>(out) + s * chunk_bytes,
                      bay.scratch.data() + s * row +
                          static_cast<std::size_t>(group_rank_) * chunk_bytes,
                      chunk_bytes);
      },
      row * n);
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

double Comm::wtime() const {
  HookScope hook("MPI_Wtime()");
  CCAPERF_REQUIRE(valid(), "wtime on invalid communicator");
  return fabric_->wtime_seconds();
}

Comm Comm::dup() const {
  HookScope hook("MPI_Comm_dup()");
  CCAPERF_REQUIRE(valid(), "dup on invalid communicator");
  std::uint64_t new_context = 0;
  collective(
      0,
      [&](detail::CollectiveBay& bay, bool first) {
        if (first) bay.agreed_u64 = fabric_->allocate_context();
      },
      [&](detail::CollectiveBay& bay) { new_context = bay.agreed_u64; },
      0);
  fabric_->ensure_context(new_context, size());
  return Comm(fabric_, new_context, members_, group_rank_);
}

Comm Comm::split(int color, int key) const {
  HookScope hook("MPI_Comm_split()");
  CCAPERF_REQUIRE(valid(), "split on invalid communicator");
  const std::size_t n = static_cast<std::size_t>(size());

  // Each rank deposits (color, key); the first collector allocates a block
  // of context ids, one per distinct color, which every rank then maps
  // identically from the gathered table.
  struct Entry {
    std::int32_t color;
    std::int32_t key;
  };
  std::vector<Entry> table(n);
  std::uint64_t base = 0;
  const Entry mine{color, key};
  collective(
      n * sizeof(Entry),
      [&](detail::CollectiveBay& bay, bool) {
        std::memcpy(bay.scratch.data() +
                        static_cast<std::size_t>(group_rank_) * sizeof(Entry),
                    &mine, sizeof(Entry));
      },
      [&](detail::CollectiveBay& bay) {
        // Collect runs serialized under the bay lock after everyone has
        // deposited. The first collector reserves one context id per
        // distinct color; every rank reads the agreed base + full table.
        if (bay.agreed_u64 == 0) {
          std::vector<std::int32_t> colors;
          const Entry* entries = reinterpret_cast<const Entry*>(bay.scratch.data());
          for (std::size_t r = 0; r < n; ++r) colors.push_back(entries[r].color);
          std::sort(colors.begin(), colors.end());
          colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
          bay.agreed_u64 = fabric_->allocate_context_block(colors.size());
        }
        base = bay.agreed_u64;
        std::memcpy(table.data(), bay.scratch.data(), n * sizeof(Entry));
      },
      n * sizeof(Entry));

  // All ranks hold identical (table, base); derive my subgroup
  // deterministically: members share my color, ordered by (key, rank).
  std::vector<std::int32_t> colors;
  for (const Entry& e : table) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  const auto color_index = static_cast<std::uint64_t>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
  const std::uint64_t new_context = base + color_index;

  std::vector<int> parent_ranks;
  for (std::size_t r = 0; r < n; ++r)
    if (table[r].color == color) parent_ranks.push_back(static_cast<int>(r));
  std::stable_sort(parent_ranks.begin(), parent_ranks.end(),
                   [&](int a, int b) {
                     return table[static_cast<std::size_t>(a)].key <
                            table[static_cast<std::size_t>(b)].key;
                   });

  auto new_members = std::make_shared<std::vector<int>>();
  int new_rank = -1;
  for (std::size_t i = 0; i < parent_ranks.size(); ++i) {
    if (parent_ranks[i] == group_rank_) new_rank = static_cast<int>(i);
    new_members->push_back(world_rank_of(parent_ranks[i]));
  }
  CCAPERF_REQUIRE(new_rank >= 0, "split: caller missing from its own subgroup");
  fabric_->ensure_context(new_context, static_cast<int>(new_members->size()));
  return Comm(fabric_, new_context, std::move(new_members), new_rank);
}

}  // namespace mpp
