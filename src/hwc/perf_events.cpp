#include "hwc/perf_events.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "support/error.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define CCAPERF_HAVE_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace hwc {

HwcBackend env_hwc_backend() {
  const char* env = std::getenv("CCAPERF_HWC");
  const std::string_view v = env == nullptr ? "" : env;
  if (v.empty() || v == "sim") return HwcBackend::sim;
  if (v == "perf") return HwcBackend::perf;
  ccaperf::raise("CCAPERF_HWC: want 'sim' or 'perf', got '" + std::string(v) +
                 "'");
}

#if CCAPERF_HAVE_PERF_EVENTS

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

const perf_event_mmap_page* ctrl(const void* page) {
  return static_cast<const perf_event_mmap_page*>(page);
}

// Compiler barrier: the seqlock protocol needs the lock reads ordered
// around the counter read (same-CPU ordering, so no fence instruction).
void rmb() { asm volatile("" ::: "memory"); }

#if defined(__x86_64__) || defined(__i386__)
std::uint64_t read_pmc(std::uint32_t idx) {
  std::uint32_t lo = 0, hi = 0;
  asm volatile("rdpmc" : "=a"(lo), "=d"(hi) : "c"(idx));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
#else
std::uint64_t read_pmc(std::uint32_t) { return 0; }  // never taken: no rdpmc cap
#endif

}  // namespace

PerfCounter::~PerfCounter() { close_now(); }

PerfCounter::PerfCounter(PerfCounter&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      errno_(o.errno_),
      page_(std::exchange(o.page_, nullptr)) {}

PerfCounter& PerfCounter::operator=(PerfCounter&& o) noexcept {
  if (this != &o) {
    close_now();
    fd_ = std::exchange(o.fd_, -1);
    errno_ = o.errno_;
    page_ = std::exchange(o.page_, nullptr);
  }
  return *this;
}

void PerfCounter::close_now() {
  if (page_ != nullptr) {
    munmap(page_, static_cast<std::size_t>(sysconf(_SC_PAGESIZE)));
    page_ = nullptr;
  }
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool PerfCounter::open(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space only: works at paranoid <= 2
  attr.exclude_hv = 1;
  const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/-1, /*flags=*/0);
  if (fd < 0) {
    errno_ = errno;
    return false;
  }
  fd_ = static_cast<int>(fd);
  // Control page for the rdpmc fast path; counting works without it.
  void* p = mmap(nullptr, static_cast<std::size_t>(sysconf(_SC_PAGESIZE)),
                 PROT_READ, MAP_SHARED, fd_, 0);
  if (p != MAP_FAILED && ctrl(p)->cap_user_rdpmc != 0)
    page_ = p;
  else if (p != MAP_FAILED)
    munmap(p, static_cast<std::size_t>(sysconf(_SC_PAGESIZE)));
  return true;
}

bool PerfCounter::rdpmc() const { return page_ != nullptr; }

std::uint64_t PerfCounter::read() const {
  if (page_ != nullptr) {
    // Seqlock read loop from the perf_event.h header comment: index == 0
    // means the event is not currently on a PMU (multiplexed out) and we
    // must take the slow path for that reading.
    const perf_event_mmap_page* pc = ctrl(page_);
    for (;;) {
      const std::uint32_t seq = pc->lock;
      rmb();
      const std::uint32_t idx = pc->index;
      const std::int64_t offset = static_cast<std::int64_t>(pc->offset);
      if (idx == 0) break;
      std::int64_t pmc = static_cast<std::int64_t>(read_pmc(idx - 1));
      const unsigned width = pc->pmc_width;
      pmc <<= 64 - width;  // sign-extend the raw counter
      pmc >>= 64 - width;
      rmb();
      if (pc->lock != seq) continue;  // torn: retry
      return static_cast<std::uint64_t>(offset + pmc);
    }
  }
  std::uint64_t value = 0;
  if (fd_ >= 0 &&
      ::read(fd_, &value, sizeof value) != static_cast<ssize_t>(sizeof value))
    return 0;
  return value;
}

namespace {

struct PerfEventSpec {
  const char* papi_name;
  std::uint32_t type;
  std::uint64_t config;
};

std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                              std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

std::vector<PerfEventSpec> perf_event_table() {
  return {
      {"PAPI_TOT_CYC", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {"PAPI_TOT_INS", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {kL1Dcm, PERF_TYPE_HW_CACHE,
       hw_cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS)},
      // PAPI_L2_DCM has no portable perf alias; last-level-cache misses are
      // the closest architectural event (capacity misses past the private
      // levels — the quantity the paper's cache term models).
      {kL2Dcm, PERF_TYPE_HW_CACHE,
       hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS)},
  };
}

}  // namespace

bool PerfBackend::compiled_in() { return true; }

HwcInstallReport PerfBackend::install(CounterRegistry& reg,
                                      HwcBackend requested) {
  HwcInstallReport report;
  report.requested = requested;
  report.active = HwcBackend::sim;
  if (requested == HwcBackend::sim) return report;

  std::vector<PerfCounter> opened;
  std::vector<const char*> names;
  for (const PerfEventSpec& spec : perf_event_table()) {
    PerfCounter c;
    if (c.open(spec.type, spec.config)) {
      opened.push_back(std::move(c));
      names.push_back(spec.papi_name);
      continue;
    }
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += std::string(spec.papi_name) + ": " +
                     std::strerror(c.last_errno());
  }
  if (opened.empty()) {
    // Wholesale degradation: perf_event_open is walled off (seccomp,
    // perf_event_paranoid). Registry left untouched; sim stays active.
    if (report.detail.empty())
      report.detail = "perf_event_open: no events available";
    return report;
  }

  counters_ = std::move(opened);
  report.active = HwcBackend::perf;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const PerfCounter* c = &counters_[i];
    reg.add_source(names[i], [c] { return c->read(); });
    report.installed.emplace_back(names[i]);
  }
  return report;
}

#else  // !CCAPERF_HAVE_PERF_EVENTS

PerfCounter::~PerfCounter() = default;
PerfCounter::PerfCounter(PerfCounter&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), errno_(o.errno_), page_(nullptr) {}
PerfCounter& PerfCounter::operator=(PerfCounter&& o) noexcept {
  fd_ = std::exchange(o.fd_, -1);
  errno_ = o.errno_;
  return *this;
}
void PerfCounter::close_now() {}
bool PerfCounter::open(std::uint32_t, std::uint64_t) {
  errno_ = 38;  // ENOSYS
  return false;
}
bool PerfCounter::rdpmc() const { return false; }
std::uint64_t PerfCounter::read() const { return 0; }

bool PerfBackend::compiled_in() { return false; }

HwcInstallReport PerfBackend::install(CounterRegistry&, HwcBackend requested) {
  HwcInstallReport report;
  report.requested = requested;
  report.active = HwcBackend::sim;
  if (requested == HwcBackend::perf)
    report.detail = "perf_events backend not compiled in on this platform";
  return report;
}

#endif  // CCAPERF_HAVE_PERF_EVENTS

HwcInstallReport PerfBackend::install(CounterRegistry& reg) {
  return install(reg, env_hwc_backend());
}

}  // namespace hwc
