#pragma once
// hwc::CacheSim — a set-associative LRU cache simulator.
//
// The paper reads hardware cache-miss counters through PAPI/PCL on a Xeon
// with a 512 kB L2 (Section 5) and attributes the sequential/strided
// timing crossover of States/EFMFlux/GodunovFlux to cache behaviour
// (Figs. 4-5). We have no PAPI, so this simulator *is* the hardware
// counter backend: numerical kernels can run with their loads/stores
// routed through a cache model (see probe.hpp), producing deterministic
// miss counts with exactly the paper's qualitative behaviour — unit-ratio
// for cache-resident arrays, growing miss ratio once the working set
// overflows the cache under strided access.
//
// Multi-level hierarchies are built by chaining: an access that misses one
// level is forwarded to `lower()`.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace hwc {

/// Counter snapshot for one cache level.
struct CacheCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

/// One level of set-associative, write-back/write-allocate LRU cache.
class CacheSim {
 public:
  /// `size_bytes` total capacity; `line_bytes` block size (power of two);
  /// `associativity` ways per set. size must be divisible by line*ways.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, std::size_t associativity);

  /// Simulates a data access of `bytes` starting at `addr`. Accesses that
  /// straddle line boundaries touch every covered line. Returns the number
  /// of misses incurred at *this* level.
  std::uint64_t access(std::uintptr_t addr, std::size_t bytes, bool is_write);

  /// Invalidates all lines and (optionally kept) counters.
  void flush();
  void reset_counters();

  const CacheCounters& counters() const { return counters_; }
  std::size_t size_bytes() const { return size_bytes_; }
  std::size_t line_bytes() const { return line_bytes_; }
  std::size_t associativity() const { return assoc_; }
  std::size_t num_sets() const { return sets_; }

  /// Chains a lower (larger/slower) level; misses here are forwarded to it.
  void set_lower(CacheSim* lower) { lower_ = lower; }
  CacheSim* lower() const { return lower_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t touch_line(std::uint64_t line_addr, bool is_write);

  std::size_t size_bytes_;
  std::size_t line_bytes_;
  std::size_t assoc_;
  std::size_t sets_;
  unsigned line_shift_;
  std::vector<Way> ways_;  // sets_ x assoc_, row-major
  std::uint64_t stamp_ = 0;
  CacheCounters counters_;
  CacheSim* lower_ = nullptr;
};

/// Builds the paper's testbed memory hierarchy: 8 kB L1D feeding the
/// 512 kB L2 of the dual-Xeon nodes (64 B lines, 8-way). Returned pair is
/// (l1, l2); access through l1.
struct XeonHierarchy {
  XeonHierarchy() : l1(8 * 1024, 64, 4), l2(512 * 1024, 64, 8) { l1.set_lower(&l2); }
  CacheSim l1;
  CacheSim l2;
};

}  // namespace hwc
