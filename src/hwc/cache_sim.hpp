#pragma once
// hwc::CacheSim — a set-associative LRU cache simulator.
//
// The paper reads hardware cache-miss counters through PAPI/PCL on a Xeon
// with a 512 kB L2 (Section 5) and attributes the sequential/strided
// timing crossover of States/EFMFlux/GodunovFlux to cache behaviour
// (Figs. 4-5). We have no PAPI, so this simulator *is* the hardware
// counter backend: numerical kernels can run with their loads/stores
// routed through a cache model (see probe.hpp), producing deterministic
// miss counts with exactly the paper's qualitative behaviour — unit-ratio
// for cache-resident arrays, growing miss ratio once the working set
// overflows the cache under strided access.
//
// Multi-level hierarchies are built by chaining: an access that misses one
// level is forwarded to `lower()`.
//
// The simulator is on the tracing hot path (every probed load/store of a
// traced kernel lands here), so it carries three fast-path mechanisms:
//  * `access_run` batches a whole strided run of elements into one call,
//    touching each cache line once via address arithmetic — elements that
//    provably stay in the line just touched are accounted as hits without
//    re-walking the set;
//  * a per-set MRU way hint short-circuits the associativity scan on
//    repeat hits (the dominant event in a traced sweep);
//  * `flush()` is O(1): a generation counter invalidates every line
//    without rewriting the way array.
// All three are exact: counters are bit-identical to an element-by-element
// `access` loop (tests/hwc/test_access_run.cpp asserts this property).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

// The batched tracing fast path lives or dies on access_run specializing
// at its (constant count/stride) kernel call sites; GCC's inliner balks at
// the function size, so force it.
#if defined(__GNUC__) || defined(__clang__)
#define CCAPERF_FORCE_INLINE inline __attribute__((always_inline))
#else
#define CCAPERF_FORCE_INLINE inline
#endif

namespace hwc {

/// Counter snapshot for one cache level.
struct CacheCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

/// One level of set-associative, write-back/write-allocate LRU cache.
class CacheSim {
 public:
  /// `size_bytes` total capacity; `line_bytes` block size (power of two);
  /// `associativity` ways per set. size must be divisible by line*ways.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, std::size_t associativity);

  /// Simulates a data access of `bytes` starting at `addr`. Accesses that
  /// straddle line boundaries touch every covered line. Returns the number
  /// of misses incurred at *this* level.
  std::uint64_t access(std::uintptr_t addr, std::size_t bytes, bool is_write);

  /// Simulates `count` accesses of `elem_bytes` each, the k-th at
  /// `addr + k*stride_bytes` — exactly equivalent (bit-identical counters
  /// and replacement state) to calling `access` once per element, but runs
  /// in O(lines touched) instead of O(elements) for dense runs. Negative
  /// strides are allowed (falls back to the scalar walk). Returns the
  /// number of misses incurred at *this* level. Defined inline below so
  /// kernel call sites with constant counts/strides specialize fully;
  /// `access` stays out of line as the per-element reference path.
  CCAPERF_FORCE_INLINE std::uint64_t access_run(std::uintptr_t addr,
                                                std::ptrdiff_t stride_bytes,
                                                std::size_t count,
                                                std::size_t elem_bytes,
                                                bool is_write);

  /// The pre-fastpath element path, preserved verbatim (two set scans, no
  /// MRU way hint, per-touch tag-shift recompute) so ablation benches can
  /// measure the fast path against the cost profile that shipped before
  /// it, not against today's accelerated scalar path. Counters and
  /// replacement decisions are bit-identical to `access`
  /// (tests/hwc/test_access_run.cpp asserts this); only the mru_ hint is
  /// left stale, which can never change counters.
  std::uint64_t access_prebatch(std::uintptr_t addr, std::size_t bytes, bool is_write);

  /// Invalidates all lines (O(1): bumps the line generation) and keeps
  /// counters.
  void flush();
  void reset_counters();

  const CacheCounters& counters() const { return counters_; }
  std::size_t size_bytes() const { return size_bytes_; }
  std::size_t line_bytes() const { return line_bytes_; }
  std::size_t associativity() const { return assoc_; }
  std::size_t num_sets() const { return sets_; }

  /// Chains a lower (larger/slower) level; misses here are forwarded to it.
  void set_lower(CacheSim* lower) { lower_ = lower; }
  CacheSim* lower() const { return lower_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    std::uint64_t gen = 0;  // valid iff gen == CacheSim::gen_
    bool dirty = false;
  };

  bool valid(const Way& w) const { return w.gen == gen_; }
  std::uint64_t touch_line(std::uint64_t line_addr, bool is_write);
  /// touch_line, but also hands back the way now holding the line (the
  /// set's new MRU) so access_run can extend guaranteed-hit runs on it.
  Way* touch_way(std::uint64_t line_addr, bool is_write, std::uint64_t& misses);
  /// Inline MRU-hint fast path for access_run: a repeat hit on the set's
  /// hottest line costs a handful of instructions; everything else falls
  /// through to the out-of-line touch_way. Bookkeeping is identical to
  /// touch_way's hint-hit branch.
  Way* hint_touch(std::uint64_t line_addr, bool is_write, std::uint64_t& misses) {
    const std::uint64_t set = line_addr & (sets_ - 1);
    Way& h = ways_[static_cast<std::size_t>(set) * assoc_ +
                   mru_[static_cast<std::size_t>(set)]];
    if (h.gen == gen_ && h.tag == line_addr >> tag_shift_) {
      ++counters_.accesses;
      ++counters_.hits;
      h.lru = ++stamp_;
      h.dirty |= is_write;
      return &h;
    }
    return touch_way(line_addr, is_write, misses);
  }

  std::size_t size_bytes_;
  std::size_t line_bytes_;
  std::size_t assoc_;
  std::size_t sets_;
  unsigned line_shift_;
  unsigned tag_shift_;                 // log2(sets_), hoisted from touch_line
  std::vector<Way> ways_;              // sets_ x assoc_, row-major
  std::vector<std::uint32_t> mru_;     // per-set most-recently-used way hint
  std::uint64_t stamp_ = 0;
  std::uint64_t gen_ = 1;              // flush() increments; Way::gen matches
  CacheCounters counters_;
  CacheSim* lower_ = nullptr;
};

inline std::uint64_t CacheSim::access_run(std::uintptr_t addr,
                                          std::ptrdiff_t stride_bytes,
                                          std::size_t count, std::size_t elem_bytes,
                                          bool is_write) {
  if (count == 0 || elem_bytes == 0) return 0;
  std::uint64_t misses = 0;

  // Invariant: `cur_way` (when non-null) holds `cur_line`, and no line has
  // been touched since — so an element confined to `cur_line` is a
  // *guaranteed* hit and can be accounted without re-walking the set. The
  // bookkeeping (accesses/hits/stamp/lru/dirty) matches touch_way's hit
  // path exactly, keeping counters and replacement state bit-identical to
  // the element-by-element loop.
  std::uint64_t cur_line = 0;
  Way* cur_way = nullptr;

  // Hot-loop state stays in registers: geometry is hoisted, and the hit
  // bookkeeping (access/hit tallies, the LRU stamp) accumulates locally —
  // flushed to the members once per run and around slow-path calls instead
  // of once per element. gen_/mru_/ways_ are only mutated by touch_way, so
  // reads through the hoisted pointers stay coherent.
  const unsigned line_shift = line_shift_;
  const std::uint64_t set_mask = sets_ - 1;
  const unsigned tag_shift = tag_shift_;
  const std::uint64_t gen = gen_;
  const std::size_t assoc = assoc_;
  Way* const ways = ways_.data();
  const std::uint32_t* const mru = mru_.data();
  std::uint64_t local_stamp = stamp_;
  std::uint64_t local_acc = 0, local_hit = 0;

  // MRU-hint touch with deferred bookkeeping; misses and hint failures
  // sync the members and take the shared out-of-line path.
  auto touch = [&](std::uint64_t line) -> Way* {
    const std::uint64_t set = line & set_mask;
    Way& h = ways[static_cast<std::size_t>(set) * assoc +
                  mru[static_cast<std::size_t>(set)]];
    if (h.gen == gen && h.tag == line >> tag_shift) {
      ++local_acc;
      ++local_hit;
      h.lru = ++local_stamp;
      h.dirty |= is_write;
      return &h;
    }
    counters_.accesses += local_acc;
    counters_.hits += local_hit;
    stamp_ = local_stamp;
    local_acc = local_hit = 0;
    Way* w = touch_way(line, is_write, misses);
    local_stamp = stamp_;
    return w;
  };

  // Power-of-two strides (the kernels' contiguous and row-strided runs)
  // extend guaranteed-hit runs with a shift; the integer division would
  // otherwise dominate the per-run cost.
  const auto ustride = static_cast<std::uint64_t>(stride_bytes);
  const bool stride_pow2 = stride_bytes > 0 && (ustride & (ustride - 1)) == 0;
  unsigned stride_shift = 0;
  for (std::uint64_t s = ustride; stride_pow2 && s > 1; s >>= 1) ++stride_shift;

  std::size_t k = 0;
  while (k < count) {
    const std::uint64_t a =
        static_cast<std::uint64_t>(addr) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(k) * stride_bytes);
    const std::uint64_t first = a >> line_shift;
    const std::uint64_t last = (a + elem_bytes - 1) >> line_shift;

    if (first == last) {
      if (cur_way != nullptr && first == cur_line) {
        // Guaranteed hit; extend over every following element that provably
        // stays inside this line (run-length batching).
        std::size_t run = 1;
        if (stride_bytes > 0) {
          const std::uint64_t line_end = (first + 1) << line_shift;
          const std::uint64_t room = line_end - (a + elem_bytes);
          const std::uint64_t ext = stride_pow2 ? room >> stride_shift : room / ustride;
          run += static_cast<std::size_t>(std::min<std::uint64_t>(count - k - 1, ext));
        } else if (stride_bytes == 0) {
          run = count - k;
        }
        local_acc += run;
        local_hit += run;
        local_stamp += run;
        cur_way->lru = local_stamp;
        cur_way->dirty |= is_write;
        k += run;
        continue;
      }
      cur_way = touch(first);
      cur_line = first;
      ++k;
      continue;
    }

    // Element straddles line boundaries: touch every covered line in the
    // scalar order (first line may still be the guaranteed-hit line).
    for (std::uint64_t line = first; line <= last; ++line) {
      if (cur_way != nullptr && line == cur_line) {
        ++local_acc;
        ++local_hit;
        cur_way->lru = ++local_stamp;
        cur_way->dirty |= is_write;
      } else {
        cur_way = touch(line);
        cur_line = line;
      }
    }
    ++k;
  }
  counters_.accesses += local_acc;
  counters_.hits += local_hit;
  stamp_ = local_stamp;
  return misses;
}

/// Builds the paper's testbed memory hierarchy: 8 kB L1D feeding the
/// 512 kB L2 of the dual-Xeon nodes (64 B lines, 8-way). Returned pair is
/// (l1, l2); access through l1.
struct XeonHierarchy {
  XeonHierarchy() : l1(8 * 1024, 64, 4), l2(512 * 1024, 64, 8) { l1.set_lower(&l2); }
  CacheSim l1;
  CacheSim l2;
};

}  // namespace hwc
