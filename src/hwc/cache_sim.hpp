#pragma once
// hwc::CacheSim — a set-associative LRU cache simulator.
//
// The paper reads hardware cache-miss counters through PAPI/PCL on a Xeon
// with a 512 kB L2 (Section 5) and attributes the sequential/strided
// timing crossover of States/EFMFlux/GodunovFlux to cache behaviour
// (Figs. 4-5). We have no PAPI, so this simulator *is* the hardware
// counter backend: numerical kernels can run with their loads/stores
// routed through a cache model (see probe.hpp), producing deterministic
// miss counts with exactly the paper's qualitative behaviour — unit-ratio
// for cache-resident arrays, growing miss ratio once the working set
// overflows the cache under strided access.
//
// Multi-level hierarchies are built by chaining: an access that misses one
// level is forwarded to `lower()`.
//
// The simulator is on the tracing hot path (every probed load/store of a
// traced kernel lands here), so it carries three fast-path mechanisms:
//  * `access_run` batches a whole strided run of elements into one call,
//    touching each cache line once via address arithmetic — elements that
//    provably stay in the line just touched are accounted as hits without
//    re-walking the set;
//  * a per-set MRU way hint short-circuits the associativity scan on
//    repeat hits (the dominant event in a traced sweep);
//  * `flush()` is O(1): a generation counter invalidates every line
//    without rewriting the way array.
// All three are exact: counters are bit-identical to an element-by-element
// `access` loop (tests/hwc/test_access_run.cpp asserts this property).
//
// On top of the exact machinery sit two pay-per-sample estimation modes
// (DESIGN.md §11):
//  * `set_sample_stride(N, seed)` makes `access_run` simulate only batches
//    falling in every 1-in-N *window* of 2^burst_log2 consecutive batches
//    (deterministic seeded phase) and skip the rest entirely;
//    `scaled_counters()` multiplies the sampled tallies back up by N.
//    Windows rather than individual batches because sweep kernels emit
//    heavily cross-correlated batches (consecutive faces share stencil
//    lines): sampling lone batches would read almost every access as a
//    cold miss, while a multi-hundred-batch burst reaches the warm steady
//    state after a few faces and amortizes its boundary. Exact mode
//    (stride 1) is the default and is bit-identical to today — CI and
//    paper runs never change.
//  * StackDistSim (below) replaces set/way simulation with a Mattson
//    reuse-distance histogram: one pass yields estimated miss counts for
//    EVERY fully-associative LRU capacity at once.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

// The batched tracing fast path lives or dies on access_run specializing
// at its (constant count/stride) kernel call sites; GCC's inliner balks at
// the function size, so force it.
#if defined(__GNUC__) || defined(__clang__)
#define CCAPERF_FORCE_INLINE inline __attribute__((always_inline))
#else
#define CCAPERF_FORCE_INLINE inline
#endif

namespace hwc {

/// Counter snapshot for one cache level.
struct CacheCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

/// Sampled-mode window size: 2^9 = 512 consecutive access_run batches per
/// window (~70 sweep faces) — long enough for the L1 working set to warm
/// up within a handful of faces, short enough that realistic sweeps span
/// hundreds of windows per sampling stride.
inline constexpr unsigned kDefaultSampleBurstLog2 = 9;

/// One level of set-associative, write-back/write-allocate LRU cache.
class CacheSim {
 public:
  /// `size_bytes` total capacity; `line_bytes` block size (power of two);
  /// `associativity` ways per set. size must be divisible by line*ways.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, std::size_t associativity);

  /// Simulates a data access of `bytes` starting at `addr`. Accesses that
  /// straddle line boundaries touch every covered line. Returns the number
  /// of misses incurred at *this* level.
  std::uint64_t access(std::uintptr_t addr, std::size_t bytes, bool is_write);

  /// Simulates `count` accesses of `elem_bytes` each, the k-th at
  /// `addr + k*stride_bytes` — exactly equivalent (bit-identical counters
  /// and replacement state) to calling `access` once per element, but runs
  /// in O(lines touched) instead of O(elements) for dense runs. Negative
  /// strides are allowed (falls back to the scalar walk). Returns the
  /// number of misses incurred at *this* level. Defined inline below so
  /// kernel call sites with constant counts/strides specialize fully;
  /// `access` stays out of line as the per-element reference path.
  CCAPERF_FORCE_INLINE std::uint64_t access_run(std::uintptr_t addr,
                                                std::ptrdiff_t stride_bytes,
                                                std::size_t count,
                                                std::size_t elem_bytes,
                                                bool is_write);

  /// The pre-fastpath element path, preserved verbatim (two set scans, no
  /// MRU way hint, per-touch tag-shift recompute) so ablation benches can
  /// measure the fast path against the cost profile that shipped before
  /// it, not against today's accelerated scalar path. Counters and
  /// replacement decisions are bit-identical to `access`
  /// (tests/hwc/test_access_run.cpp asserts this); only the mru_ hint is
  /// left stale, which can never change counters.
  std::uint64_t access_prebatch(std::uintptr_t addr, std::size_t bytes, bool is_write);

  /// Invalidates all lines (O(1): bumps the line generation) and keeps
  /// counters.
  void flush();
  void reset_counters();

  /// Sampled mode: batches are grouped into windows of 2^burst_log2
  /// consecutive access_run calls; only windows whose index is congruent
  /// to `seed % stride` (mod stride) are simulated, the rest return 0
  /// without touching any state. Counters then tally roughly 1/stride of
  /// the traffic; read them back through `scaled_counters()`. Lower levels
  /// chained via set_lower() inherit the scale (they only ever see the
  /// sampled traffic). Stride 1 restores exact mode. Resets the batch
  /// phase; call before (not during) a traced sweep.
  void set_sample_stride(std::uint32_t stride, std::uint64_t seed = 0,
                         unsigned burst_log2 = kDefaultSampleBurstLog2);
  std::uint32_t sample_stride() const { return sample_stride_; }

  /// Governor actuation (DESIGN.md §12): changes the stride *mid-run*
  /// without resetting the cumulative seen/simulated tallies, so
  /// sample_factor() stays the realized simulated fraction of the whole
  /// stream across any stride schedule (including excursions through
  /// exact mode, which tallies every batch as simulated). The window
  /// burst size and seed are kept from the last set_sample_stride (or
  /// their defaults); the new verdict takes effect at the next window
  /// boundary. Note the factor is then an aggregate over mixed-stride
  /// phases — unbiased for cumulative counters, which is what the
  /// Mastermind differences.
  void adjust_sample_stride(std::uint32_t stride);

  /// Scale-up factor for sampled counters: the MEASURED fraction of
  /// batches simulated (total seen / simulated), not the nominal stride —
  /// the window grid rarely divides the stream evenly, and using the
  /// realized fraction removes that granularity error entirely. 1.0 in
  /// exact mode; the nominal stride if sampling skipped every batch.
  double sample_factor() const {
    if (sample_tick_ == sample_seen_) return 1.0;  // nothing ever skipped
    if (sample_seen_ == 0) return static_cast<double>(sample_stride_);
    return static_cast<double>(sample_tick_) /
           static_cast<double>(sample_seen_);
  }

  /// Counters scaled by the gating level's sample_factor() — the estimate
  /// of what exact mode would have counted. Identical to counters() in
  /// exact mode.
  CacheCounters scaled_counters() const;

  /// Sampled-mode group fast path: if the next `batches` access_run calls
  /// would all be rejected by the gate (they fit inside the current,
  /// inactive window), consume their ticks in one step and return true.
  /// Returns false in exact mode, in active windows, and when the group
  /// straddles a window boundary — callers then replay batch by batch,
  /// which is bit-identical; this only exists so traced kernels can skip
  /// the per-batch replay bookkeeping wholesale between sampled windows.
  bool sample_skip(std::uint64_t batches) {
    if (sample_stride_ <= 1 || batches == 0) return false;
    if ((sample_tick_ & sample_window_mask_) == 0)
      sample_window_active_ =
          (sample_tick_ >> sample_burst_log2_) % sample_stride_ ==
          sample_phase_;
    if (sample_window_active_) return false;
    if ((sample_tick_ & sample_window_mask_) + batches >
        sample_window_mask_ + 1)
      return false;
    sample_tick_ += batches;
    return true;
  }

  const CacheCounters& counters() const { return counters_; }
  std::size_t size_bytes() const { return size_bytes_; }
  std::size_t line_bytes() const { return line_bytes_; }
  std::size_t associativity() const { return assoc_; }
  std::size_t num_sets() const { return sets_; }

  /// Chains a lower (larger/slower) level; misses here are forwarded to it.
  void set_lower(CacheSim* lower) { lower_ = lower; }
  CacheSim* lower() const { return lower_; }

 private:
  // 16 bytes/way, not 32: the way array is the simulator's real working
  // set (a 512 kB sim = 1024 sets x 8 ways), and every touch lands on a
  // random set, so its footprint — not instruction count — bounds the
  // traced hot path. tag, generation and dirty pack into one word; the
  // hit check then becomes a single masked compare. The 16-bit generation
  // field is kept exact by flush() hard-invalidating on wrap. Tags keep
  // their low 47 bits (the rest shift out of meta): addresses alias only
  // beyond 2^(47 + tag_shift + line_shift) — far outside any real address
  // space — and every fill/lookup/writeback path truncates identically, so
  // the bit-identity property holds for arbitrary 64-bit addresses too.
  struct Way {
    std::uint64_t meta = 0;  // tag << 17 | (gen & kGenMask) << 1 | dirty
    std::uint64_t lru = 0;   // last-use stamp
  };
  static constexpr std::uint64_t kGenMask = 0xffff;  // 16-bit generation
  static constexpr unsigned kTagShiftInMeta = 17;

  static std::uint64_t pack_meta(std::uint64_t tag, std::uint64_t gen,
                                 bool dirty) {
    return tag << kTagShiftInMeta | (gen & kGenMask) << 1 |
           static_cast<std::uint64_t>(dirty);
  }
  static std::uint64_t way_tag(const Way& w) { return w.meta >> kTagShiftInMeta; }
  static bool way_dirty(const Way& w) { return (w.meta & 1) != 0; }
  /// Meta of a clean, current-generation way holding `tag`; a way matches
  /// (any dirty state) iff (meta & ~1) equals this.
  std::uint64_t match_meta(std::uint64_t tag) const {
    return pack_meta(tag, gen_, false);
  }
  bool valid(const Way& w) const {
    return ((w.meta >> 1) & kGenMask) == (gen_ & kGenMask);
  }
  std::uint64_t touch_line(std::uint64_t line_addr, bool is_write);
  /// touch_line, but also hands back the way now holding the line (the
  /// set's new MRU) so access_run can extend guaranteed-hit runs on it.
  Way* touch_way(std::uint64_t line_addr, bool is_write, std::uint64_t& misses);
  /// Inline MRU-hint fast path for access_run: a repeat hit on the set's
  /// hottest line costs a handful of instructions; everything else falls
  /// through to the out-of-line touch_way. Bookkeeping is identical to
  /// touch_way's hint-hit branch.
  Way* hint_touch(std::uint64_t line_addr, bool is_write, std::uint64_t& misses) {
    const std::uint64_t set = line_addr & (sets_ - 1);
    Way& h = ways_[static_cast<std::size_t>(set) * assoc_ +
                   mru_[static_cast<std::size_t>(set)]];
    if ((h.meta & ~std::uint64_t{1}) == match_meta(line_addr >> tag_shift_)) {
      ++counters_.accesses;
      ++counters_.hits;
      h.lru = ++stamp_;
      h.meta |= static_cast<std::uint64_t>(is_write);
      return &h;
    }
    return touch_way(line_addr, is_write, misses);
  }

  std::size_t size_bytes_;
  std::size_t line_bytes_;
  std::size_t assoc_;
  std::size_t sets_;
  unsigned line_shift_;
  unsigned tag_shift_;                 // log2(sets_), hoisted from touch_line
  std::vector<Way> ways_;              // sets_ x assoc_, row-major
  std::vector<std::uint32_t> mru_;     // per-set most-recently-used way hint
  std::uint64_t stamp_ = 0;
  std::uint64_t gen_ = 1;              // flush() increments; Way::gen matches
  std::uint32_t sample_stride_ = 1;    // 1 = exact mode
  std::uint64_t sample_tick_ = 0;      // access_run batches seen
  std::uint64_t sample_seen_ = 0;      // access_run batches simulated
  std::uint64_t sample_phase_ = 0;     // window residue that gets simulated
  std::uint64_t sample_seed_ = 0;      // kept for adjust_sample_stride()
  unsigned sample_burst_log2_ = kDefaultSampleBurstLog2;
  std::uint64_t sample_window_mask_ = (1ull << kDefaultSampleBurstLog2) - 1;
  bool sample_window_active_ = false;  // cached verdict for current window
  const CacheSim* sampler_ = this;     // level whose gate scales our counters
  CacheCounters counters_;
  CacheSim* lower_ = nullptr;
};

inline std::uint64_t CacheSim::access_run(std::uintptr_t addr,
                                          std::ptrdiff_t stride_bytes,
                                          std::size_t count, std::size_t elem_bytes,
                                          bool is_write) {
  if (count == 0 || elem_bytes == 0) return 0;
  // Sampled mode: only 1-in-stride windows of consecutive batches are
  // simulated; the rest return before touching counters or replacement
  // state. Exact mode (stride 1) takes one predicted-not-taken branch
  // here and nothing else. The window verdict (a modulo) is computed once
  // per window boundary and cached — the steady-state skip path is an
  // increment and two predictable branches, cheap enough to leave on in
  // the traced production path.
  if (sample_stride_ > 1) {
    if ((sample_tick_ & sample_window_mask_) == 0)
      sample_window_active_ =
          (sample_tick_ >> sample_burst_log2_) % sample_stride_ ==
          sample_phase_;
    ++sample_tick_;
    if (!sample_window_active_) return 0;
    ++sample_seen_;
  } else {
    // Exact mode tallies every batch as simulated so the realized fraction
    // stays meaningful across mid-run adjust_sample_stride() transitions.
    ++sample_tick_;
    ++sample_seen_;
  }
  std::uint64_t misses = 0;

  // Contiguous aligned runs (the kernels' stencil and state batches) take
  // a closed-form path: when the stride equals the element size and no
  // element can straddle a line boundary, each covered line holds a
  // computable element count — touch the line once, then account the
  // remaining elements as guaranteed hits in one arithmetic step. The
  // bookkeeping (accesses/hits, one stamp per element, final LRU stamp on
  // the way, dirty bit) matches the element loop exactly, so counters and
  // replacement state stay bit-identical; only the per-element walk goes.
  if (stride_bytes > 0 && static_cast<std::size_t>(stride_bytes) == elem_bytes &&
      (elem_bytes & (elem_bytes - 1)) == 0 && elem_bytes <= line_bytes_ &&
      static_cast<std::uint64_t>(addr) % elem_bytes == 0) {
    const unsigned elem_shift =
        static_cast<unsigned>(__builtin_ctzll(static_cast<std::uint64_t>(elem_bytes)));
    const std::uint64_t base = static_cast<std::uint64_t>(addr);
    const std::uint64_t span = static_cast<std::uint64_t>(count) << elem_shift;
    const std::uint64_t first = base >> line_shift_;
    const std::uint64_t last = (base + span - 1) >> line_shift_;
    const std::uint64_t gen_field = (gen_ & kGenMask) << 1;
    const std::uint64_t set_mask = sets_ - 1;
    const unsigned tag_shift = tag_shift_;
    const std::size_t assoc = assoc_;
    Way* const ways = ways_.data();
    const std::uint32_t* const mru = mru_.data();
    std::uint64_t acc = 0, hit = 0, stamp = stamp_;
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t line_begin = line << line_shift_;
      const std::uint64_t lo = line == first ? base : line_begin;
      const std::uint64_t hi =
          line == last ? base + span : line_begin + line_bytes_;
      const std::uint64_t n = (hi - lo) >> elem_shift;
      const std::uint64_t set = line & set_mask;
      Way& h = ways[static_cast<std::size_t>(set) * assoc +
                    mru[static_cast<std::size_t>(set)]];
      if ((h.meta & ~std::uint64_t{1}) ==
          ((line >> tag_shift) << kTagShiftInMeta | gen_field)) {
        acc += n;
        hit += n;
        stamp += n;
        h.lru = stamp;
        h.meta |= static_cast<std::uint64_t>(is_write);
      } else {
        counters_.accesses += acc;
        counters_.hits += hit;
        stamp_ = stamp;
        acc = hit = 0;
        Way* w = touch_way(line, is_write, misses);
        stamp = stamp_;
        if (n > 1) {
          acc = n - 1;
          hit = n - 1;
          stamp += n - 1;
          w->lru = stamp;
        }
      }
    }
    counters_.accesses += acc;
    counters_.hits += hit;
    stamp_ = stamp;
    return misses;
  }

  // Invariant: `cur_way` (when non-null) holds `cur_line`, and no line has
  // been touched since — so an element confined to `cur_line` is a
  // *guaranteed* hit and can be accounted without re-walking the set. The
  // bookkeeping (accesses/hits/stamp/lru/dirty) matches touch_way's hit
  // path exactly, keeping counters and replacement state bit-identical to
  // the element-by-element loop.
  std::uint64_t cur_line = 0;
  Way* cur_way = nullptr;

  // Hot-loop state stays in registers: geometry is hoisted, and the hit
  // bookkeeping (access/hit tallies, the LRU stamp) accumulates locally —
  // flushed to the members once per run and around slow-path calls instead
  // of once per element. gen_/mru_/ways_ are only mutated by touch_way, so
  // reads through the hoisted pointers stay coherent.
  const unsigned line_shift = line_shift_;
  const std::uint64_t set_mask = sets_ - 1;
  const unsigned tag_shift = tag_shift_;
  const std::uint64_t gen_field = (gen_ & kGenMask) << 1;
  const std::size_t assoc = assoc_;
  Way* const ways = ways_.data();
  const std::uint32_t* const mru = mru_.data();
  std::uint64_t local_stamp = stamp_;
  std::uint64_t local_acc = 0, local_hit = 0;

  // MRU-hint touch with deferred bookkeeping; misses and hint failures
  // sync the members and take the shared out-of-line path.
  auto touch = [&](std::uint64_t line) -> Way* {
    const std::uint64_t set = line & set_mask;
    Way& h = ways[static_cast<std::size_t>(set) * assoc +
                  mru[static_cast<std::size_t>(set)]];
    if ((h.meta & ~std::uint64_t{1}) ==
        ((line >> tag_shift) << kTagShiftInMeta | gen_field)) {
      ++local_acc;
      ++local_hit;
      h.lru = ++local_stamp;
      h.meta |= static_cast<std::uint64_t>(is_write);
      return &h;
    }
    counters_.accesses += local_acc;
    counters_.hits += local_hit;
    stamp_ = local_stamp;
    local_acc = local_hit = 0;
    Way* w = touch_way(line, is_write, misses);
    local_stamp = stamp_;
    return w;
  };

  // Power-of-two strides (the kernels' contiguous and row-strided runs)
  // extend guaranteed-hit runs with a shift; the integer division would
  // otherwise dominate the per-run cost.
  const auto ustride = static_cast<std::uint64_t>(stride_bytes);
  const bool stride_pow2 = stride_bytes > 0 && (ustride & (ustride - 1)) == 0;
  unsigned stride_shift = 0;
  for (std::uint64_t s = ustride; stride_pow2 && s > 1; s >>= 1) ++stride_shift;

  std::size_t k = 0;
  while (k < count) {
    const std::uint64_t a =
        static_cast<std::uint64_t>(addr) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(k) * stride_bytes);
    const std::uint64_t first = a >> line_shift;
    const std::uint64_t last = (a + elem_bytes - 1) >> line_shift;

    if (first == last) {
      if (cur_way != nullptr && first == cur_line) {
        // Guaranteed hit; extend over every following element that provably
        // stays inside this line (run-length batching).
        std::size_t run = 1;
        if (stride_bytes > 0) {
          const std::uint64_t line_end = (first + 1) << line_shift;
          const std::uint64_t room = line_end - (a + elem_bytes);
          const std::uint64_t ext = stride_pow2 ? room >> stride_shift : room / ustride;
          run += static_cast<std::size_t>(std::min<std::uint64_t>(count - k - 1, ext));
        } else if (stride_bytes == 0) {
          run = count - k;
        }
        local_acc += run;
        local_hit += run;
        local_stamp += run;
        cur_way->lru = local_stamp;
        cur_way->meta |= static_cast<std::uint64_t>(is_write);
        k += run;
        continue;
      }
      cur_way = touch(first);
      cur_line = first;
      ++k;
      continue;
    }

    // Element straddles line boundaries: touch every covered line in the
    // scalar order (first line may still be the guaranteed-hit line).
    for (std::uint64_t line = first; line <= last; ++line) {
      if (cur_way != nullptr && line == cur_line) {
        ++local_acc;
        ++local_hit;
        cur_way->lru = ++local_stamp;
        cur_way->meta |= static_cast<std::uint64_t>(is_write);
      } else {
        cur_way = touch(line);
        cur_line = line;
      }
    }
    ++k;
  }
  counters_.accesses += local_acc;
  counters_.hits += local_hit;
  stamp_ = local_stamp;
  return misses;
}

/// Builds the paper's testbed memory hierarchy: 8 kB L1D feeding the
/// 512 kB L2 of the dual-Xeon nodes (64 B lines, 8-way). Returned pair is
/// (l1, l2); access through l1.
struct XeonHierarchy {
  XeonHierarchy() : l1(8 * 1024, 64, 4), l2(512 * 1024, 64, 8) { l1.set_lower(&l2); }
  CacheSim l1;
  CacheSim l2;
};

/// Parses CCAPERF_CACHESIM_SAMPLE (the counted sweeps' sampling stride;
/// unset/empty/1 = exact mode). Raises on malformed values. The returned
/// stride is max(env, governor_sample_stride()) — the overhead governor's
/// actuator can coarsen counted sweeps process-wide without touching the
/// environment.
std::uint32_t env_sample_stride();

/// Process-wide stride floor installed by the overhead governor's actuator.
/// Counted sweeps build their CacheSims cold per slab, so a persistent
/// override (rather than per-instance adjust_sample_stride) is the only
/// surface that reaches them. 0/1 = no floor. SCMD ranks share the process;
/// the last-writing rank wins, which only affects counter sampling error
/// bars, never simulation results.
void set_governor_sample_stride(std::uint32_t stride);
std::uint32_t governor_sample_stride();

/// Mattson reuse-distance (stack-distance) profiler: a capacity-agnostic
/// alternative to full set/way simulation for miss-RATE estimation. Every
/// line touch records the number of distinct lines referenced since the
/// last touch of that line (its depth in an LRU stack, maintained
/// move-to-front); a fully-associative LRU cache of C lines then misses
/// exactly the touches with distance >= C plus the cold misses, so one
/// pass prices every capacity at once. Set-associative caches deviate only
/// through conflict misses, which the euler sweeps' regular strides keep
/// small (tests/hwc/test_cache_sampling.cpp bounds the error against the
/// full simulator). Depth is capped at `max_depth`: lines that fall off
/// the tracked stack recount as cold, which cannot disturb estimates for
/// capacities <= max_depth (those touches would miss either way).
class StackDistSim {
 public:
  explicit StackDistSim(std::size_t line_bytes,
                        std::size_t max_depth = std::size_t{1} << 15);

  void access(std::uintptr_t addr, std::size_t bytes);
  /// Batched form mirroring CacheSim::access_run's element semantics.
  void access_run(std::uintptr_t addr, std::ptrdiff_t stride_bytes,
                  std::size_t count, std::size_t elem_bytes);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t cold_misses() const { return cold_; }
  std::size_t max_depth() const { return max_depth_; }
  /// histogram()[d] = touches at stack distance d (d < max_depth).
  const std::vector<std::uint64_t>& histogram() const { return hist_; }

  /// Estimated misses/miss-rate of a fully-associative LRU cache holding
  /// `lines` cache lines (e.g. size_bytes / line_bytes).
  std::uint64_t estimate_misses(std::size_t lines) const;
  double estimate_miss_rate(std::size_t lines) const;

  void reset();

 private:
  void touch_line(std::uint64_t line);

  unsigned line_shift_;
  std::size_t max_depth_;
  std::vector<std::uint64_t> stack_;  // move-to-front LRU; front() = MRU
  std::vector<std::uint64_t> hist_;
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_ = 0;
};

}  // namespace hwc
