#pragma once
// Memory/FLOP probes: the bridge between numerical kernels and the
// hardware-counter substrate.
//
// Kernels in src/euler are templated on a Probe policy. With `NullProbe`
// every probe call inlines to nothing (production speed — this is the
// configuration wall-clock measurements use). With `CacheProbe` each load,
// store and floating-point operation is recorded and the memory accesses
// are replayed through a CacheSim hierarchy, yielding deterministic
// PAPI-style event counts (FP_OPS, Lx_DCM, LD_INS, SR_INS) for performance
// modeling — the paper's "hardware performance metrics such as data cache
// misses and floating point instructions executed" (Section 4.1).
//
// Probes expose both scalar hooks (load/store, one element each) and
// batched run hooks (load_run/store_run, a whole strided run per call).
// CacheProbe routes runs through CacheSim::access_run, which amortizes the
// per-element simulation cost over the run (touch each line once, MRU way
// hint) while producing bit-identical counters. ScalarReplayProbe is the
// pre-batching reference: it expands every run element by element — benches
// use it to measure the fast path's gain, tests to assert equivalence.

#include <cstdint>

#include "hwc/cache_sim.hpp"

namespace hwc {

/// Zero-cost probe: all hooks compile away.
struct NullProbe {
  static constexpr bool kCounting = false;
  void load(const void*, std::size_t) {}
  void store(const void*, std::size_t) {}
  void load_run(const void*, std::ptrdiff_t, std::size_t, std::size_t) {}
  void store_run(const void*, std::ptrdiff_t, std::size_t, std::size_t) {}
  void flops(std::uint64_t) {}
};

/// Event counts gathered by a CacheProbe run.
struct ProbeCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t flops = 0;
};

/// Records loads/stores/flops and replays memory traffic through a cache.
class CacheProbe {
 public:
  static constexpr bool kCounting = true;

  /// `top` is the first-level cache of the hierarchy (may chain lower
  /// levels). The probe does not own it.
  explicit CacheProbe(CacheSim* top) : cache_(top) {
    CCAPERF_REQUIRE(top != nullptr, "CacheProbe: null cache");
  }

  void load(const void* p, std::size_t bytes) {
    ++counts_.loads;
    cache_->access(reinterpret_cast<std::uintptr_t>(p), bytes, false);
  }
  void store(const void* p, std::size_t bytes) {
    ++counts_.stores;
    cache_->access(reinterpret_cast<std::uintptr_t>(p), bytes, true);
  }
  /// Batched: `count` loads of `elem_bytes`, the k-th at p + k*stride_bytes.
  void load_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                std::size_t elem_bytes) {
    counts_.loads += count;
    cache_->access_run(reinterpret_cast<std::uintptr_t>(p), stride_bytes, count,
                       elem_bytes, false);
  }
  void store_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                 std::size_t elem_bytes) {
    counts_.stores += count;
    cache_->access_run(reinterpret_cast<std::uintptr_t>(p), stride_bytes, count,
                       elem_bytes, true);
  }
  void flops(std::uint64_t n) { counts_.flops += n; }

  /// Group fast path for sampled simulation (DESIGN.md §11): if the
  /// simulator will reject the next `runs` batch calls wholesale (inactive
  /// sampling window), tally the aggregate event counts here and return
  /// true — the caller skips its per-run replay. Event totals are
  /// identical either way; this only removes per-run call overhead.
  bool skip_runs(std::uint64_t runs, std::uint64_t loads, std::uint64_t stores,
                 std::uint64_t flop_count) {
    if (!cache_->sample_skip(runs)) return false;
    counts_.loads += loads;
    counts_.stores += stores;
    counts_.flops += flop_count;
    return true;
  }

  const ProbeCounts& counts() const { return counts_; }
  CacheSim* cache() const { return cache_; }
  void reset() { counts_ = ProbeCounts{}; }

 private:
  CacheSim* cache_;
  ProbeCounts counts_;
};

/// Pre-batching reference probe: identical event stream to CacheProbe but
/// every run is replayed element by element through `access_prebatch`, the
/// element path preserved verbatim from before the fast path existed (no
/// batching, no MRU hint, per-touch tag-shift recompute). Exists so the
/// batched fast path has an in-tree baseline with the original cost
/// profile to be benchmarked (bench_ablation_tracing_fastpath) and
/// property-tested against.
class ScalarReplayProbe {
 public:
  static constexpr bool kCounting = true;

  explicit ScalarReplayProbe(CacheSim* top) : cache_(top) {
    CCAPERF_REQUIRE(top != nullptr, "ScalarReplayProbe: null cache");
  }

  void load(const void* p, std::size_t bytes) {
    ++counts_.loads;
    cache_->access_prebatch(reinterpret_cast<std::uintptr_t>(p), bytes, false);
  }
  void store(const void* p, std::size_t bytes) {
    ++counts_.stores;
    cache_->access_prebatch(reinterpret_cast<std::uintptr_t>(p), bytes, true);
  }
  void load_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                std::size_t elem_bytes) {
    replay(p, stride_bytes, count, elem_bytes, false);
    counts_.loads += count;
  }
  void store_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                 std::size_t elem_bytes) {
    replay(p, stride_bytes, count, elem_bytes, true);
    counts_.stores += count;
  }
  void flops(std::uint64_t n) { counts_.flops += n; }

  /// The element path never samples; groups are always replayed.
  bool skip_runs(std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t) {
    return false;
  }

  const ProbeCounts& counts() const { return counts_; }
  CacheSim* cache() const { return cache_; }
  void reset() { counts_ = ProbeCounts{}; }

 private:
  void replay(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
              std::size_t elem_bytes, bool is_write) {
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    for (std::size_t k = 0; k < count; ++k)
      cache_->access_prebatch(
          addr + static_cast<std::uintptr_t>(static_cast<std::ptrdiff_t>(k) *
                                             stride_bytes),
          elem_bytes, is_write);
  }

  CacheSim* cache_;
  ProbeCounts counts_;
};

/// Estimation probe: routes the kernel's memory traffic into a StackDistSim
/// reuse-distance profiler instead of the set/way simulator. One traced
/// sweep then yields estimated miss rates for every cache capacity at once
/// (sim()->estimate_miss_rate(lines)) at a fraction of the full-simulation
/// cost — the histogram mode of DESIGN.md §11.
class StackDistProbe {
 public:
  static constexpr bool kCounting = true;

  explicit StackDistProbe(StackDistSim* sim) : sim_(sim) {
    CCAPERF_REQUIRE(sim != nullptr, "StackDistProbe: null profiler");
  }

  void load(const void* p, std::size_t bytes) {
    ++counts_.loads;
    sim_->access(reinterpret_cast<std::uintptr_t>(p), bytes);
  }
  void store(const void* p, std::size_t bytes) {
    ++counts_.stores;
    sim_->access(reinterpret_cast<std::uintptr_t>(p), bytes);
  }
  void load_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                std::size_t elem_bytes) {
    counts_.loads += count;
    sim_->access_run(reinterpret_cast<std::uintptr_t>(p), stride_bytes, count,
                     elem_bytes);
  }
  void store_run(const void* p, std::ptrdiff_t stride_bytes, std::size_t count,
                 std::size_t elem_bytes) {
    counts_.stores += count;
    sim_->access_run(reinterpret_cast<std::uintptr_t>(p), stride_bytes, count,
                     elem_bytes);
  }
  void flops(std::uint64_t n) { counts_.flops += n; }

  /// The reuse-distance profiler has no sampling mode; always replay.
  bool skip_runs(std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t) {
    return false;
  }

  const ProbeCounts& counts() const { return counts_; }
  StackDistSim* sim() const { return sim_; }
  void reset() { counts_ = ProbeCounts{}; }

 private:
  StackDistSim* sim_;
  ProbeCounts counts_;
};

}  // namespace hwc
