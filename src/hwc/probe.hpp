#pragma once
// Memory/FLOP probes: the bridge between numerical kernels and the
// hardware-counter substrate.
//
// Kernels in src/euler are templated on a Probe policy. With `NullProbe`
// every probe call inlines to nothing (production speed — this is the
// configuration wall-clock measurements use). With `CacheProbe` each load,
// store and floating-point operation is recorded and the memory accesses
// are replayed through a CacheSim hierarchy, yielding deterministic
// PAPI-style event counts (FP_OPS, Lx_DCM, LD_INS, SR_INS) for performance
// modeling — the paper's "hardware performance metrics such as data cache
// misses and floating point instructions executed" (Section 4.1).

#include <cstdint>

#include "hwc/cache_sim.hpp"

namespace hwc {

/// Zero-cost probe: all hooks compile away.
struct NullProbe {
  static constexpr bool kCounting = false;
  void load(const void*, std::size_t) {}
  void store(const void*, std::size_t) {}
  void flops(std::uint64_t) {}
};

/// Event counts gathered by a CacheProbe run.
struct ProbeCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t flops = 0;
};

/// Records loads/stores/flops and replays memory traffic through a cache.
class CacheProbe {
 public:
  static constexpr bool kCounting = true;

  /// `top` is the first-level cache of the hierarchy (may chain lower
  /// levels). The probe does not own it.
  explicit CacheProbe(CacheSim* top) : cache_(top) {
    CCAPERF_REQUIRE(top != nullptr, "CacheProbe: null cache");
  }

  void load(const void* p, std::size_t bytes) {
    ++counts_.loads;
    cache_->access(reinterpret_cast<std::uintptr_t>(p), bytes, false);
  }
  void store(const void* p, std::size_t bytes) {
    ++counts_.stores;
    cache_->access(reinterpret_cast<std::uintptr_t>(p), bytes, true);
  }
  void flops(std::uint64_t n) { counts_.flops += n; }

  const ProbeCounts& counts() const { return counts_; }
  CacheSim* cache() const { return cache_; }
  void reset() { counts_ = ProbeCounts{}; }

 private:
  CacheSim* cache_;
  ProbeCounts counts_;
};

}  // namespace hwc
