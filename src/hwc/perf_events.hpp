#pragma once
// Linux perf_events counter backend (DESIGN.md §11).
//
// The simulator-backed counters (CacheSim / CacheProbe) model the paper's
// PAPI metrics deterministically; this backend reads the *real* hardware
// PMU through perf_event_open(2) and publishes the same PAPI-named
// sources through hwc::CounterRegistry, so every consumer (Mastermind
// snapshots, trace counter samples, telemetry) is backend-agnostic.
//
// Selection is at runtime via CCAPERF_HWC:
//   (unset) | "sim"  -> simulator counters only (the default; deterministic)
//   "perf"           -> try the PMU, degrade per-event, fall back wholesale
//
// Degradation ladder (each step logs its reason in the install report):
//   1. no <linux/perf_event.h> at build time        -> backend compiled out
//   2. perf_event_open ENOSYS/EACCES/EPERM (container seccomp,
//      perf_event_paranoid)                         -> simulator, reason kept
//   3. individual event unsupported (ENOENT/ENODEV) -> that event skipped,
//      the rest still install
//   4. event opened but multiplexed or rdpmc-less   -> read(2) slow path
//
// Counts are read on the caller's thread with a userspace rdpmc fast path
// when the kernel exports one (cap_user_rdpmc in the mmap'd control page,
// seqlock protocol from the perf_event.h header comment), else read(2).

#include <cstdint>
#include <string>
#include <vector>

#include "hwc/counters.hpp"

namespace hwc {

/// Which counter substrate backs the PAPI-named registry sources.
enum class HwcBackend { sim, perf };

/// Parses CCAPERF_HWC. Unset/empty/"sim" -> sim, "perf" -> perf; anything
/// else raises (typos must not silently measure the wrong thing).
HwcBackend env_hwc_backend();

/// One perf_event_open'd counter. Movable, not copyable; closes its fd and
/// unmaps its control page on destruction.
class PerfCounter {
 public:
  PerfCounter() = default;
  ~PerfCounter();
  PerfCounter(PerfCounter&& o) noexcept;
  PerfCounter& operator=(PerfCounter&& o) noexcept;
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;

  /// Opens a counter for this process (any CPU, user-space only, counting
  /// from now). Returns false and records errno on failure.
  bool open(std::uint32_t type, std::uint64_t config);

  bool ok() const { return fd_ >= 0; }
  int last_errno() const { return errno_; }
  /// True when reads go through the userspace rdpmc path.
  bool rdpmc() const;

  /// Current count. rdpmc fast path when available, else read(2).
  std::uint64_t read() const;

 private:
  void close_now();

  int fd_ = -1;
  int errno_ = 0;
  void* page_ = nullptr;  // perf_event_mmap_page when mapped
};

/// Outcome of install_backend: what was asked for, what actually backs the
/// registry, which PAPI names were installed, and why anything degraded.
struct HwcInstallReport {
  HwcBackend requested = HwcBackend::sim;
  HwcBackend active = HwcBackend::sim;
  std::vector<std::string> installed;  ///< PAPI names now in the registry
  std::string detail;                  ///< degradation reason(s), "" if none

  bool degraded() const { return active != requested; }
};

/// Installs the requested backend's counter sources into `reg`.
///
/// sim: no-op (the simulator probes publish their own sources); perf:
/// opens PAPI_TOT_CYC / PAPI_TOT_INS / PAPI_L1_DCM / PAPI_L2_DCM against
/// the PMU and registers them. If *no* event opens, falls back to sim and
/// leaves the registry untouched. Call once per rank registry; the
/// returned report owns the open fds for the registry's lifetime — keep it
/// alive as long as the registry reads the sources.
class PerfBackend {
 public:
  /// Reads CCAPERF_HWC and installs accordingly.
  HwcInstallReport install(CounterRegistry& reg);
  /// Explicit-backend variant (tests, embedders).
  HwcInstallReport install(CounterRegistry& reg, HwcBackend requested);

  /// True when this build can talk to perf_events at all (Linux, header
  /// present at compile time). False means "perf" always degrades to sim.
  static bool compiled_in();

 private:
  std::vector<PerfCounter> counters_;  // referenced by registered lambdas
};

}  // namespace hwc
