#include "hwc/cache_sim.hpp"

#include <algorithm>

namespace hwc {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
unsigned log2u(std::size_t v) {
  unsigned s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes,
                   std::size_t associativity)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(associativity) {
  CCAPERF_REQUIRE(is_pow2(line_bytes_), "CacheSim: line size must be a power of two");
  CCAPERF_REQUIRE(assoc_ >= 1, "CacheSim: associativity must be >= 1");
  CCAPERF_REQUIRE(size_bytes_ % (line_bytes_ * assoc_) == 0,
                  "CacheSim: size must be a multiple of line*associativity");
  sets_ = size_bytes_ / (line_bytes_ * assoc_);
  CCAPERF_REQUIRE(is_pow2(sets_), "CacheSim: set count must be a power of two");
  line_shift_ = log2u(line_bytes_);
  tag_shift_ = log2u(sets_);
  ways_.assign(sets_ * assoc_, Way{});
  mru_.assign(sets_, 0);
}

CacheSim::Way* CacheSim::touch_way(std::uint64_t line_addr, bool is_write,
                                   std::uint64_t& misses) {
  ++counters_.accesses;
  const std::uint64_t set = line_addr & (sets_ - 1);
  const std::uint64_t tag = line_addr >> tag_shift_;
  Way* row = &ways_[static_cast<std::size_t>(set) * assoc_];
  std::uint32_t& mru = mru_[static_cast<std::size_t>(set)];

  // MRU way hint: repeat hits on the hottest line of a set skip the
  // associativity scan entirely (the dominant event in a traced sweep).
  if (Way& h = row[mru]; valid(h) && h.tag == tag) {
    ++counters_.hits;
    h.lru = ++stamp_;
    h.dirty |= is_write;
    return &h;
  }

  // One pass doubles as hit scan and victim pre-selection (first invalid
  // way, else strict-LRU with lowest-index tie-break — identical choice to
  // a separate victim scan).
  std::size_t victim = 0;
  bool found_invalid = false;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (!valid(row[w])) {
      if (!found_invalid) {
        victim = w;
        found_invalid = true;
      }
      continue;
    }
    if (row[w].tag == tag) {
      ++counters_.hits;
      row[w].lru = ++stamp_;
      row[w].dirty |= is_write;
      mru = static_cast<std::uint32_t>(w);
      return &row[w];
    }
    if (!found_invalid && row[w].lru < oldest) {
      oldest = row[w].lru;
      victim = w;
    }
  }

  // Miss: forward to the lower level, then fill (write-allocate).
  ++counters_.misses;
  ++misses;
  if (lower_ != nullptr)
    lower_->access(line_addr << line_shift_, line_bytes_, is_write);

  if (!found_invalid) {
    ++counters_.evictions;
    if (row[victim].dirty) {
      ++counters_.writebacks;
      // Dirty victim written back to the lower level.
      if (lower_ != nullptr) {
        const std::uint64_t victim_line = (row[victim].tag << tag_shift_) | set;
        lower_->access(victim_line << line_shift_, line_bytes_, true);
      }
    }
  }
  row[victim] = Way{tag, ++stamp_, gen_, is_write};
  mru = static_cast<std::uint32_t>(victim);
  return &row[victim];
}

std::uint64_t CacheSim::touch_line(std::uint64_t line_addr, bool is_write) {
  std::uint64_t misses = 0;
  touch_way(line_addr, is_write, misses);
  return misses;
}

std::uint64_t CacheSim::access_prebatch(std::uintptr_t addr, std::size_t bytes,
                                        bool is_write) {
  // Preserved pre-fastpath element path (see the header comment): hit scan
  // and victim scan are separate passes, the tag shift is recomputed per
  // touch, and there is no MRU way hint — exactly the per-element cost the
  // batched API replaced. Do not "fix" this; it is the ablation baseline.
  if (bytes == 0) return 0;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  std::uint64_t total_misses = 0;
  for (std::uint64_t line_addr = first; line_addr <= last; ++line_addr) {
    ++counters_.accesses;
    const std::uint64_t set = line_addr & (sets_ - 1);
    const std::uint64_t tag = line_addr >> log2u(sets_);
    Way* row = &ways_[static_cast<std::size_t>(set) * assoc_];

    // Hit?
    bool hit = false;
    for (std::size_t w = 0; w < assoc_; ++w) {
      if (valid(row[w]) && row[w].tag == tag) {
        ++counters_.hits;
        row[w].lru = ++stamp_;
        row[w].dirty |= is_write;
        hit = true;
        break;
      }
    }
    if (hit) continue;

    // Miss: forward to the lower level, then fill (write-allocate).
    ++counters_.misses;
    ++total_misses;
    if (lower_ != nullptr)
      lower_->access(line_addr << line_shift_, line_bytes_, is_write);

    // Victim = invalid way if any, else LRU.
    std::size_t victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < assoc_; ++w) {
      if (!valid(row[w])) {
        victim = w;
        found_invalid = true;
        break;
      }
      if (row[w].lru < oldest) {
        oldest = row[w].lru;
        victim = w;
      }
    }
    if (!found_invalid) {
      ++counters_.evictions;
      if (row[victim].dirty) {
        ++counters_.writebacks;
        // Dirty victim written back to the lower level.
        if (lower_ != nullptr) {
          const std::uint64_t victim_line =
              (row[victim].tag << log2u(sets_)) | set;
          lower_->access(victim_line << line_shift_, line_bytes_, true);
        }
      }
    }
    row[victim] = Way{tag, ++stamp_, gen_, is_write};
  }
  return total_misses;
}

std::uint64_t CacheSim::access(std::uintptr_t addr, std::size_t bytes, bool is_write) {
  if (bytes == 0) return 0;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  std::uint64_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line)
    misses += touch_line(line, is_write);
  return misses;
}

void CacheSim::flush() {
  // O(1): advancing the generation invalidates every line; ways are
  // lazily reclaimed (an out-of-generation way reads as invalid).
  ++gen_;
}

void CacheSim::reset_counters() { counters_ = CacheCounters{}; }

}  // namespace hwc
