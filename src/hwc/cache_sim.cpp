#include "hwc/cache_sim.hpp"

namespace hwc {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
unsigned log2u(std::size_t v) {
  unsigned s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes,
                   std::size_t associativity)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(associativity) {
  CCAPERF_REQUIRE(is_pow2(line_bytes_), "CacheSim: line size must be a power of two");
  CCAPERF_REQUIRE(assoc_ >= 1, "CacheSim: associativity must be >= 1");
  CCAPERF_REQUIRE(size_bytes_ % (line_bytes_ * assoc_) == 0,
                  "CacheSim: size must be a multiple of line*associativity");
  sets_ = size_bytes_ / (line_bytes_ * assoc_);
  CCAPERF_REQUIRE(is_pow2(sets_), "CacheSim: set count must be a power of two");
  line_shift_ = log2u(line_bytes_);
  ways_.assign(sets_ * assoc_, Way{});
}

std::uint64_t CacheSim::touch_line(std::uint64_t line_addr, bool is_write) {
  ++counters_.accesses;
  const std::uint64_t set = line_addr & (sets_ - 1);
  const std::uint64_t tag = line_addr >> log2u(sets_);
  Way* row = &ways_[static_cast<std::size_t>(set) * assoc_];

  // Hit?
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (row[w].valid && row[w].tag == tag) {
      ++counters_.hits;
      row[w].lru = ++stamp_;
      row[w].dirty |= is_write;
      return 0;
    }
  }

  // Miss: forward to the lower level, then fill (write-allocate).
  ++counters_.misses;
  if (lower_ != nullptr)
    lower_->access(line_addr << line_shift_, line_bytes_, is_write);

  // Victim = invalid way if any, else LRU.
  std::size_t victim = 0;
  bool found_invalid = false;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (!row[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (row[w].lru < oldest) {
      oldest = row[w].lru;
      victim = w;
    }
  }
  if (!found_invalid) {
    ++counters_.evictions;
    if (row[victim].dirty) {
      ++counters_.writebacks;
      // Dirty victim written back to the lower level.
      if (lower_ != nullptr) {
        const std::uint64_t victim_line =
            (row[victim].tag << log2u(sets_)) | set;
        lower_->access(victim_line << line_shift_, line_bytes_, true);
      }
    }
  }
  row[victim] = Way{tag, ++stamp_, true, is_write};
  return 1;
}

std::uint64_t CacheSim::access(std::uintptr_t addr, std::size_t bytes, bool is_write) {
  if (bytes == 0) return 0;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  std::uint64_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line)
    misses += touch_line(line, is_write);
  return misses;
}

void CacheSim::flush() {
  for (auto& w : ways_) w = Way{};
  stamp_ = 0;
}

void CacheSim::reset_counters() { counters_ = CacheCounters{}; }

}  // namespace hwc
