#include "hwc/cache_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace hwc {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
unsigned log2u(std::size_t v) {
  unsigned s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes,
                   std::size_t associativity)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(associativity) {
  CCAPERF_REQUIRE(is_pow2(line_bytes_), "CacheSim: line size must be a power of two");
  CCAPERF_REQUIRE(assoc_ >= 1, "CacheSim: associativity must be >= 1");
  CCAPERF_REQUIRE(size_bytes_ % (line_bytes_ * assoc_) == 0,
                  "CacheSim: size must be a multiple of line*associativity");
  sets_ = size_bytes_ / (line_bytes_ * assoc_);
  CCAPERF_REQUIRE(is_pow2(sets_), "CacheSim: set count must be a power of two");
  line_shift_ = log2u(line_bytes_);
  tag_shift_ = log2u(sets_);
  ways_.assign(sets_ * assoc_, Way{});
  mru_.assign(sets_, 0);
}

CacheSim::Way* CacheSim::touch_way(std::uint64_t line_addr, bool is_write,
                                   std::uint64_t& misses) {
  ++counters_.accesses;
  const std::uint64_t set = line_addr & (sets_ - 1);
  const std::uint64_t tag = line_addr >> tag_shift_;
  Way* row = &ways_[static_cast<std::size_t>(set) * assoc_];
  std::uint32_t& mru = mru_[static_cast<std::size_t>(set)];

  // MRU way hint: repeat hits on the hottest line of a set skip the
  // associativity scan entirely (the dominant event in a traced sweep).
  const std::uint64_t want = match_meta(tag);
  if (Way& h = row[mru]; (h.meta & ~std::uint64_t{1}) == want) {
    ++counters_.hits;
    h.lru = ++stamp_;
    h.meta |= static_cast<std::uint64_t>(is_write);
    return &h;
  }

  // One pass doubles as hit scan and victim pre-selection (first invalid
  // way, else strict-LRU with lowest-index tie-break — identical choice to
  // a separate victim scan).
  std::size_t victim = 0;
  bool found_invalid = false;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (!valid(row[w])) {
      if (!found_invalid) {
        victim = w;
        found_invalid = true;
      }
      continue;
    }
    if ((row[w].meta & ~std::uint64_t{1}) == want) {
      ++counters_.hits;
      row[w].lru = ++stamp_;
      row[w].meta |= static_cast<std::uint64_t>(is_write);
      mru = static_cast<std::uint32_t>(w);
      return &row[w];
    }
    if (!found_invalid && row[w].lru < oldest) {
      oldest = row[w].lru;
      victim = w;
    }
  }

  // Miss: forward to the lower level, then fill (write-allocate).
  ++counters_.misses;
  ++misses;
  if (lower_ != nullptr)
    lower_->access(line_addr << line_shift_, line_bytes_, is_write);

  if (!found_invalid) {
    ++counters_.evictions;
    if (way_dirty(row[victim])) {
      ++counters_.writebacks;
      // Dirty victim written back to the lower level.
      if (lower_ != nullptr) {
        const std::uint64_t victim_line =
            (way_tag(row[victim]) << tag_shift_) | set;
        lower_->access(victim_line << line_shift_, line_bytes_, true);
      }
    }
  }
  row[victim] = Way{pack_meta(tag, gen_, is_write), ++stamp_};
  mru = static_cast<std::uint32_t>(victim);
  return &row[victim];
}

std::uint64_t CacheSim::touch_line(std::uint64_t line_addr, bool is_write) {
  std::uint64_t misses = 0;
  touch_way(line_addr, is_write, misses);
  return misses;
}

std::uint64_t CacheSim::access_prebatch(std::uintptr_t addr, std::size_t bytes,
                                        bool is_write) {
  // Preserved pre-fastpath element path (see the header comment): hit scan
  // and victim scan are separate passes, the tag shift is recomputed per
  // touch, and there is no MRU way hint — exactly the per-element cost the
  // batched API replaced. Do not "fix" this; it is the ablation baseline.
  if (bytes == 0) return 0;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  std::uint64_t total_misses = 0;
  for (std::uint64_t line_addr = first; line_addr <= last; ++line_addr) {
    ++counters_.accesses;
    const std::uint64_t set = line_addr & (sets_ - 1);
    const std::uint64_t tag = line_addr >> log2u(sets_);
    Way* row = &ways_[static_cast<std::size_t>(set) * assoc_];

    // Hit? (Same packed-meta compare as touch_way — tag truncation must
    // agree between the fill and every lookup path.)
    const std::uint64_t want = pack_meta(tag, gen_, false);
    bool hit = false;
    for (std::size_t w = 0; w < assoc_; ++w) {
      if ((row[w].meta & ~std::uint64_t{1}) == want) {
        ++counters_.hits;
        row[w].lru = ++stamp_;
        row[w].meta |= static_cast<std::uint64_t>(is_write);
        hit = true;
        break;
      }
    }
    if (hit) continue;

    // Miss: forward to the lower level, then fill (write-allocate).
    ++counters_.misses;
    ++total_misses;
    if (lower_ != nullptr)
      lower_->access(line_addr << line_shift_, line_bytes_, is_write);

    // Victim = invalid way if any, else LRU.
    std::size_t victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < assoc_; ++w) {
      if (!valid(row[w])) {
        victim = w;
        found_invalid = true;
        break;
      }
      if (row[w].lru < oldest) {
        oldest = row[w].lru;
        victim = w;
      }
    }
    if (!found_invalid) {
      ++counters_.evictions;
      if (way_dirty(row[victim])) {
        ++counters_.writebacks;
        // Dirty victim written back to the lower level.
        if (lower_ != nullptr) {
          const std::uint64_t victim_line =
              (way_tag(row[victim]) << log2u(sets_)) | set;
          lower_->access(victim_line << line_shift_, line_bytes_, true);
        }
      }
    }
    row[victim] = Way{pack_meta(tag, gen_, is_write), ++stamp_};
  }
  return total_misses;
}

std::uint64_t CacheSim::access(std::uintptr_t addr, std::size_t bytes, bool is_write) {
  if (bytes == 0) return 0;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  std::uint64_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line)
    misses += touch_line(line, is_write);
  return misses;
}

void CacheSim::flush() {
  // O(1): advancing the generation invalidates every line; ways are
  // lazily reclaimed (an out-of-generation way reads as invalid). The
  // stored generation is only kGenMask bits wide, so on wrap every way is
  // hard-invalidated (once per 65536 flushes — amortized free) and the
  // masked generation 0, which cleared ways carry, is skipped; lines from
  // a previous epoch can therefore never read as valid.
  ++gen_;
  if ((gen_ & kGenMask) == 0) {
    std::fill(ways_.begin(), ways_.end(), Way{});
    ++gen_;
  }
}

void CacheSim::reset_counters() { counters_ = CacheCounters{}; }

void CacheSim::set_sample_stride(std::uint32_t stride, std::uint64_t seed,
                                 unsigned burst_log2) {
  CCAPERF_REQUIRE(stride >= 1, "CacheSim: sample stride must be >= 1");
  CCAPERF_REQUIRE(burst_log2 <= 30, "CacheSim: sample burst must be <= 2^30");
  sample_stride_ = stride;
  sample_tick_ = 0;
  sample_seen_ = 0;
  sample_phase_ = stride > 1 ? seed % stride : 0;
  sample_seed_ = seed;
  sample_burst_log2_ = burst_log2;
  sample_window_mask_ = (std::uint64_t{1} << burst_log2) - 1;
  sample_window_active_ = false;  // recomputed at tick 0 (a window boundary)
  // Lower levels only ever see the sampled fraction of the traffic, so
  // their counters carry this level's scale even though they don't gate.
  for (CacheSim* c = this; c != nullptr; c = c->lower_) c->sampler_ = this;
}

void CacheSim::adjust_sample_stride(std::uint32_t stride) {
  CCAPERF_REQUIRE(stride >= 1, "CacheSim: sample stride must be >= 1");
  sample_stride_ = stride;
  sample_phase_ = stride > 1 ? sample_seed_ % stride : 0;
  // Cumulative sample_tick_/sample_seen_ survive on purpose: see the
  // header contract. The cached window verdict is kept until the next
  // window boundary recomputes it against the new stride/phase, so the
  // switch point is deterministic in batch count.
  for (CacheSim* c = this; c != nullptr; c = c->lower_) c->sampler_ = this;
}

CacheCounters CacheSim::scaled_counters() const {
  const double f = sampler_->sample_factor();
  auto scale = [f](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * f + 0.5);
  };
  CacheCounters s;
  s.accesses = scale(counters_.accesses);
  s.hits = scale(counters_.hits);
  s.misses = scale(counters_.misses);
  s.evictions = scale(counters_.evictions);
  s.writebacks = scale(counters_.writebacks);
  return s;
}

namespace {
std::atomic<std::uint32_t> g_governor_stride{1};
}

void set_governor_sample_stride(std::uint32_t stride) {
  g_governor_stride.store(stride < 1 ? 1 : stride, std::memory_order_relaxed);
}

std::uint32_t governor_sample_stride() {
  return g_governor_stride.load(std::memory_order_relaxed);
}

std::uint32_t env_sample_stride() {
  std::uint32_t stride = 1;
  const char* env = std::getenv("CCAPERF_CACHESIM_SAMPLE");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    CCAPERF_REQUIRE(end != nullptr && *end == '\0' && v >= 1 && v <= (1 << 20),
                    "CCAPERF_CACHESIM_SAMPLE: want an integer stride in [1, 2^20]");
    stride = static_cast<std::uint32_t>(v);
  }
  return std::max(stride, governor_sample_stride());
}

// --- StackDistSim ------------------------------------------------------------

StackDistSim::StackDistSim(std::size_t line_bytes, std::size_t max_depth)
    : max_depth_(max_depth) {
  CCAPERF_REQUIRE(is_pow2(line_bytes),
                  "StackDistSim: line size must be a power of two");
  CCAPERF_REQUIRE(max_depth >= 1, "StackDistSim: max depth must be >= 1");
  line_shift_ = log2u(line_bytes);
  hist_.assign(max_depth_, 0);
}

void StackDistSim::touch_line(std::uint64_t line) {
  ++accesses_;
  // MRU fast path: the dominant event (consecutive elements of a run on
  // one line) costs a compare, like CacheSim's way hint.
  if (!stack_.empty() && stack_.front() == line) {
    ++hist_[0];
    return;
  }
  const auto it = std::find(stack_.begin(), stack_.end(), line);
  if (it == stack_.end()) {
    ++cold_;
    // Beyond the tracked depth, lines recount as cold — harmless for any
    // capacity <= max_depth (see the class comment).
    if (stack_.size() == max_depth_) stack_.pop_back();
    stack_.insert(stack_.begin(), line);
    return;
  }
  ++hist_[static_cast<std::size_t>(it - stack_.begin())];
  std::rotate(stack_.begin(), it, it + 1);  // move-to-front
}

void StackDistSim::access(std::uintptr_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = static_cast<std::uint64_t>(addr) >> line_shift_;
  const std::uint64_t last =
      static_cast<std::uint64_t>(addr + bytes - 1) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) touch_line(line);
}

void StackDistSim::access_run(std::uintptr_t addr, std::ptrdiff_t stride_bytes,
                              std::size_t count, std::size_t elem_bytes) {
  for (std::size_t k = 0; k < count; ++k)
    access(addr + static_cast<std::uintptr_t>(
                      static_cast<std::ptrdiff_t>(k) * stride_bytes),
           elem_bytes);
}

std::uint64_t StackDistSim::estimate_misses(std::size_t lines) const {
  // A fully-associative LRU cache of `lines` lines hits exactly the
  // touches with stack distance < lines.
  std::uint64_t misses = cold_;
  for (std::size_t d = std::min(lines, max_depth_); d < max_depth_; ++d)
    misses += hist_[d];
  return misses;
}

double StackDistSim::estimate_miss_rate(std::size_t lines) const {
  return accesses_ ? static_cast<double>(estimate_misses(lines)) /
                         static_cast<double>(accesses_)
                   : 0.0;
}

void StackDistSim::reset() {
  stack_.clear();
  std::fill(hist_.begin(), hist_.end(), 0);
  accesses_ = 0;
  cold_ = 0;
}

}  // namespace hwc
