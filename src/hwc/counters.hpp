#pragma once
// PAPI-style named counter registry.
//
// TAU "relies on an external library such as PAPI or PCL to access
// low-level processor-specific hardware performance metrics" (paper §4.1).
// hwc::CounterRegistry plays that role: measurement code registers named
// sources (functions returning a monotonically growing count — e.g. a
// CacheSim's miss counter or a CacheProbe's FLOP tally) and readers
// snapshot them by name. Event names follow PAPI conventions so profiles
// read familiarly (PAPI_FP_OPS, PAPI_L1_DCM, ...).

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace hwc {

/// Standard event names (PAPI vocabulary).
inline constexpr const char* kFpOps = "PAPI_FP_OPS";
inline constexpr const char* kL1Dcm = "PAPI_L1_DCM";
inline constexpr const char* kL2Dcm = "PAPI_L2_DCM";
inline constexpr const char* kLdIns = "PAPI_LD_INS";
inline constexpr const char* kSrIns = "PAPI_SR_INS";

class CounterRegistry {
 public:
  using Source = std::function<std::uint64_t()>;

  /// Registers (or replaces) a named counter source.
  void add_source(std::string name, Source source) {
    CCAPERF_REQUIRE(source != nullptr, "CounterRegistry: null source");
    for (auto& [n, s] : sources_) {
      if (n == name) {
        s = std::move(source);
        return;
      }
    }
    sources_.emplace_back(std::move(name), std::move(source));
  }

  bool has(const std::string& name) const {
    for (const auto& [n, s] : sources_)
      if (n == name) return true;
    return false;
  }

  std::uint64_t read(const std::string& name) const {
    for (const auto& [n, s] : sources_)
      if (n == name) return s();
    ccaperf::raise("CounterRegistry: unknown counter '" + name + "'");
  }

  std::size_t size() const { return sources_.size(); }

  /// Zero-allocation snapshot: overwrites `out` with every counter value in
  /// registration order (reuses its capacity). The caller pairs values with
  /// names() resolved once — the monitoring hot path does exactly that.
  void read_values(std::vector<std::uint64_t>& out) const {
    out.resize(sources_.size());
    for (std::size_t i = 0; i < sources_.size(); ++i) out[i] = sources_[i].second();
  }

  /// Snapshot of every registered counter, in registration order.
  std::vector<std::pair<std::string, std::uint64_t>> read_all() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(sources_.size());
    for (const auto& [n, s] : sources_) out.emplace_back(n, s());
    return out;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(sources_.size());
    for (const auto& [n, s] : sources_) out.push_back(n);
    return out;
  }

 private:
  std::vector<std::pair<std::string, Source>> sources_;
};

}  // namespace hwc
