#!/usr/bin/env python3
"""CTest label audit: every registered test must carry a tier label.

The tier-1 gate runs `ctest -L tier1`; a test registered without a tier
label silently falls out of every CI lane. This walks the generated
CTestTestfile.cmake files under the build directory and fails if any
add_test() entry lacks a LABELS property containing tier1 or tier2.

Usage: scripts/audit_test_labels.py <build-dir>
"""

import os
import re
import sys

ADD_TEST = re.compile(r'add_test\(\s*(?:\[=*\[)?"?([A-Za-z0-9_.-]+)"?\]?')

# Binaries that must stay in the tier-1 lane specifically: they carry the
# overhead-governor contract suites (Governor*/ThreadedGovernor/OnlineRefit
# in test_core, TraceTiers in test_tau, CacheSampling governor-stride tests
# in test_hwc), the multi-tenant hub contract (session isolation, drop
# accounting, and the HubProperty stream-identity tests in
# test_telemetry_hub), and the LU session workload's correctness suite
# (test_lu_workload). A demotion to tier2 would silently drop those
# checks from the gate in check_tier1.sh.
REQUIRED_TIER1 = {"test_core", "test_tau", "test_hwc", "test_pattern",
                  "test_telemetry_hub", "test_lu_workload"}
PROPS = re.compile(
    r'set_tests_properties\(\s*(?:\[=*\[)?"?([A-Za-z0-9_.-]+)"?(?:\]=*\])?\s+'
    r"PROPERTIES\s+(.*?)\)\s*$",
    re.DOTALL | re.MULTILINE,
)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    build_dir = sys.argv[1]

    tests = set()
    labels = {}
    found_any_file = False
    for root, _dirs, files in os.walk(build_dir):
        if "CTestTestfile.cmake" not in files:
            continue
        found_any_file = True
        text = open(os.path.join(root, "CTestTestfile.cmake")).read()
        for m in ADD_TEST.finditer(text):
            tests.add(m.group(1))
        for m in PROPS.finditer(text):
            name, props = m.group(1), m.group(2)
            lm = re.search(r'LABELS\s+"([^"]*)"', props)
            if lm:
                labels.setdefault(name, set()).update(lm.group(1).split(";"))

    if not found_any_file or not tests:
        print(f"label audit: no CTestTestfile.cmake under {build_dir} "
              "(configure the build first)", file=sys.stderr)
        return 2

    bad = sorted(t for t in tests
                 if not labels.get(t, set()) & {"tier1", "tier2"})
    for t in sorted(tests):
        tier = ",".join(sorted(labels.get(t, set()))) or "<none>"
        print(f"  {t:<28} labels: {tier}")
    if bad:
        print(f"label audit FAILED: {len(bad)} test(s) without a tier1/tier2 "
              f"label: {', '.join(bad)}")
        return 1
    demoted = sorted(t for t in REQUIRED_TIER1 & tests
                     if "tier1" not in labels.get(t, set()))
    if demoted:
        print(f"label audit FAILED: governor contract suite(s) not tier1: "
              f"{', '.join(demoted)}")
        return 1
    missing = sorted(REQUIRED_TIER1 - tests)
    if missing:
        print(f"label audit FAILED: required suite(s) not registered: "
              f"{', '.join(missing)}")
        return 1
    print(f"label audit: OK ({len(tests)} tests, all tiered; "
          f"governor suites pinned to tier1)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
