#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): configure + build + run every `tier1`-labeled
# ctest suite, the end-to-end trace/chaos pipeline smokes, and sanitized
# rebuilds of the concurrency-sensitive suites. Intended for CI and for a
# quick local pre-push check:
#
#   scripts/check_tier1.sh            # everything: build/ + build-tsan/ + build-asan/
#   BUILD_DIR=mybuild scripts/check_tier1.sh
#   STAGES="tsan" scripts/check_tier1.sh          # one stage
#   STAGES="tier1 trace-smoke" scripts/check_tier1.sh
#
# STAGES is a space-separated subset of the ALL_STAGES array below (the
# array is the single source of truth — the default run, this usage text,
# and stage-name validation all derive from it), so the CI pipeline can
# fan the stages out across jobs while local runs keep the
# single-command default. Unknown stage names fail fast with the valid
# list instead of silently running nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

# Every stage this script knows, in default execution order. Adding a
# stage = add it here + add its `if want <name>` block; nothing else to
# keep in sync.
ALL_STAGES=(tier1 trace-smoke chaos-soak governor-soak ranks-scaling
            simd-matrix prediction-gate hub-soak tsan asan)

BUILD_DIR=${BUILD_DIR:-build}
ASAN_DIR=${ASAN_DIR:-build-asan}
TSAN_DIR=${TSAN_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
STAGES=${STAGES:-${ALL_STAGES[*]}}

for stage in ${STAGES}; do
  case " ${ALL_STAGES[*]} " in
    *" ${stage} "*) ;;
    *)
      echo "check_tier1.sh: unknown stage '${stage}'" >&2
      echo "valid stages: ${ALL_STAGES[*]}" >&2
      exit 2 ;;
  esac
done

want() {
  case " ${STAGES} " in
    *" $1 "*) return 0 ;;
    *) return 1 ;;
  esac
}

# The trace smoke and chaos soak share one fig01 binary and scratch dir.
FIG01=""
SMOKE_DIR=""
need_fig01() {
  if [ -z "${FIG01}" ]; then
    cmake -B "${BUILD_DIR}" -S . >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_fig01_simulation
    FIG01="$(cd "${BUILD_DIR}/bench" && pwd)/bench_fig01_simulation"
    SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/ccaperf-trace-smoke.XXXXXX")
    trap 'rm -rf "${SMOKE_DIR}"' EXIT
  fi
}

if want tier1; then
  echo "== tier-1 suites (${BUILD_DIR}) =="
  cmake -B "${BUILD_DIR}" -S . >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"
fi

if want trace-smoke; then
  echo "== trace pipeline smoke (2-rank fig01, CCAPERF_TRACE) =="
  # End-to-end cross-rank tracing: the binary exits nonzero on an unbalanced
  # or flow-unmatched trace, and the merged JSON must parse.
  need_fig01
  (cd "${SMOKE_DIR}" &&
   CCAPERF_TRACE=trace.json CCAPERF_RANKS=2 CCAPERF_STEPS=2 "${FIG01}" >/dev/null)
  if command -v python3 >/dev/null; then
    python3 -m json.tool "${SMOKE_DIR}/trace.json" >/dev/null
    python3 -c 'import json,sys
for p in sys.argv[1:]:
    [json.loads(l) for l in open(p)]' "${SMOKE_DIR}"/telemetry.rank*.jsonl
  fi
  echo "trace smoke: OK"
fi

if want chaos-soak; then
  echo "== chaos soak (2-rank fig01 under moderate fault plan) =="
  # Graceful-degradation gate: the same simulation run clean and under the
  # seeded moderate fault plan must converge to the same physics (density
  # CSVs match to tolerance — the recovery layer hides every injected
  # fault), while the telemetry JSONL proves faults were actually injected
  # and recovered (nonzero FAULT_* counter deltas).
  need_fig01
  SOAK_SEED=${SOAK_SEED:-20260805}
  (cd "${SMOKE_DIR}" && mkdir -p clean chaos &&
   cd clean && CCAPERF_RANKS=2 CCAPERF_STEPS=4 "${FIG01}" >/dev/null &&
   cd ../chaos &&
   CCAPERF_TRACE=trace.json CCAPERF_RANKS=2 CCAPERF_STEPS=4 \
   CCAPERF_FAULT_PLAN=moderate CCAPERF_FAULT_SEED="${SOAK_SEED}" \
   "${FIG01}" > fig01.out)
  grep -q "fault injection" "${SMOKE_DIR}/chaos/fig01.out"
  python3 - "${SMOKE_DIR}" <<'PY'
import glob, json, os, sys

smoke = sys.argv[1]

def rows(pattern):
    out = []
    for path in sorted(glob.glob(pattern)):
        with open(path) as f:
            next(f)  # header
            for line in f:
                x, y, rho = line.split(",")
                out.append((x.strip(), y.strip(), float(rho)))
    out.sort()
    return out

# fig01 writes its CSV series under bench_out/figs/ relative to its cwd.
clean = rows(os.path.join(smoke, "clean", "bench_out", "figs",
                          "fig01_density.rank*.csv"))
chaos = rows(os.path.join(smoke, "chaos", "bench_out", "figs",
                          "fig01_density.rank*.csv"))
assert len(clean) == len(chaos) > 0, (len(clean), len(chaos))
worst = max(abs(a[2] - b[2]) for a, b in zip(clean, chaos))
assert all(a[:2] == b[:2] for a, b in zip(clean, chaos)), "cell sets differ"
assert worst <= 1e-9, f"density diverged under faults: max |drho| = {worst}"

fault_totals = {}
for path in glob.glob(os.path.join(smoke, "chaos", "telemetry.rank*.jsonl")):
    for line in open(path):
        for k, v in json.loads(line).get("counter_delta", {}).items():
            if k.startswith("FAULT_"):
                fault_totals[k] = fault_totals.get(k, 0) + v
injected = fault_totals.get("FAULT_INJECTED", 0)
recovered = fault_totals.get("FAULT_RETRIES", 0) + fault_totals.get(
    "FAULT_DUP_SUPPRESSED", 0) + fault_totals.get("FAULT_STALE_FALLBACKS", 0)
assert injected > 0, f"no faults injected in chaos soak: {fault_totals}"
assert recovered > 0, f"no recovery activity in chaos soak: {fault_totals}"
print(f"chaos soak: densities match (max drift {worst:g}); "
      f"{injected} faults injected, recovery counters {fault_totals}")
PY
  echo "chaos soak: OK"
fi

if want governor-soak; then
  echo "== governor soak (2-rank fig01 under a 2% overhead budget) =="
  # The overhead governor (DESIGN.md §12) must keep realized measurement
  # self-cost inside the budget on the full simulation without perturbing
  # the physics: a governed run (CCAPERF_OVERHEAD_PCT=2, full tracing)
  # writes density CSVs byte-identical to an ungoverned untraced run, its
  # telemetry/trace still parse, every telemetry line carries the realized
  # overhead_pct and the governor level, and the cumulative self-cost over
  # the second half of the run stays under budget + hysteresis band (2.5%).
  need_fig01
  (cd "${SMOKE_DIR}" && mkdir -p gov-on gov-off &&
   cd gov-off && CCAPERF_RANKS=2 CCAPERF_STEPS=6 "${FIG01}" >/dev/null &&
   cd ../gov-on &&
   CCAPERF_TRACE=trace.json CCAPERF_OVERHEAD_PCT=2 CCAPERF_RANKS=2 \
   CCAPERF_STEPS=6 "${FIG01}" >/dev/null)
  python3 -m json.tool "${SMOKE_DIR}/gov-on/trace.json" >/dev/null
  python3 - "${SMOKE_DIR}" <<'PY'
import filecmp, glob, json, os, sys

smoke = sys.argv[1]
on = sorted(glob.glob(os.path.join(smoke, "gov-on", "bench_out", "figs",
                                   "fig01_density.rank*.csv")))
off = sorted(glob.glob(os.path.join(smoke, "gov-off", "bench_out", "figs",
                                    "fig01_density.rank*.csv")))
assert len(on) == len(off) > 0, (len(on), len(off))
for po, pf in zip(on, off):
    assert os.path.basename(po) == os.path.basename(pf), (po, pf)
    assert filecmp.cmp(po, pf, shallow=False), \
        f"governed run perturbed the physics: {po}"

tiers, worst_late = 0, 0.0
for path in sorted(glob.glob(os.path.join(smoke, "gov-on",
                                          "telemetry.rank*.jsonl"))):
    lines = [json.loads(l) for l in open(path)]
    assert lines, f"empty telemetry: {path}"
    tiers += sum(1 for l in lines
                 if l.get("governor", {}).get("event") == "tier")
    samples = [l for l in lines if "overhead_pct" in l]
    assert samples, f"no overhead_pct telemetry: {path}"
    assert all("governor_level" in l for l in samples), \
        f"telemetry missing governor_level: {path}"
    # Cumulative realized overhead over the second half of the run: the
    # controller gets the first half to walk the tier ladder down.
    mid, last = samples[len(samples) // 2], samples[-1]
    dt = last["t_us"] - mid["t_us"]
    if dt > 0:
        worst_late = max(worst_late,
                         100.0 * (last["self_us"] - mid["self_us"]) / dt)
# A fast host may never breach the budget (no tier transitions) — then the
# realized overhead itself must prove throttling was unnecessary.
assert tiers > 0 or worst_late <= 2.5, "no tier transitions yet over budget"
assert worst_late <= 2.5, f"governed overhead {worst_late:.2f}% > 2.5%"
print(f"governor soak: physics byte-identical, {tiers} tier transitions, "
      f"late-half overhead {worst_late:.2f}% <= 2.5%")
PY
  echo "governor soak: OK"
fi

if want ranks-scaling; then
  echo "== rank-scaling smoke (64-rank fig01, tree collectives + sharded balance) =="
  # The tree collectives and the distributed load balancer (active at >= 16
  # ranks) must keep a clean large-world run deterministic: two identical
  # 64-rank runs produce byte-identical density CSVs, and the per-rank
  # telemetry still parses.
  need_fig01
  (cd "${SMOKE_DIR}" && mkdir -p ranks-a ranks-b &&
   cd ranks-a &&
   CCAPERF_TRACE=trace.json CCAPERF_RANKS=64 CCAPERF_STEPS=2 "${FIG01}" >/dev/null &&
   cd ../ranks-b && CCAPERF_RANKS=64 CCAPERF_STEPS=2 "${FIG01}" >/dev/null)
  python3 - "${SMOKE_DIR}" <<'PY'
import filecmp, glob, json, os, sys

smoke = sys.argv[1]
a = sorted(glob.glob(os.path.join(smoke, "ranks-a", "bench_out", "figs",
                                  "fig01_density.rank*.csv")))
b = sorted(glob.glob(os.path.join(smoke, "ranks-b", "bench_out", "figs",
                                  "fig01_density.rank*.csv")))
assert len(a) == len(b) > 0, (len(a), len(b))
for pa, pb in zip(a, b):
    assert os.path.basename(pa) == os.path.basename(pb), (pa, pb)
    assert filecmp.cmp(pa, pb, shallow=False), f"density CSV differs: {pa}"
ranks = 0
for path in glob.glob(os.path.join(smoke, "ranks-a", "telemetry.rank*.jsonl")):
    ranks += 1
    for line in open(path):
        json.loads(line)
assert ranks > 0, "no telemetry emitted"
print(f"ranks scaling: {len(a)} density CSVs byte-identical across runs, "
      f"telemetry from {ranks} rank files parses")
PY
  echo "ranks scaling: OK"
fi

if want simd-matrix; then
  echo "== SIMD dispatch matrix (fig01 byte-identical across forced ISA levels) =="
  # The runtime-dispatched kernels (CCAPERF_SIMD, DESIGN.md §11) must be
  # bit-identical to the scalar reference: the same 2-rank fig01 run forced
  # to each ISA level, with the simulated counter backend pinned
  # (CCAPERF_HWC=sim), must write byte-identical density CSVs. Levels the
  # host cannot run clamp down (ultimately to scalar), so on a non-AVX
  # runner the stage degrades to a scalar-vs-scalar determinism check
  # instead of failing.
  need_fig01
  for isa in scalar avx2 native; do
    (cd "${SMOKE_DIR}" && mkdir -p "simd-${isa}" && cd "simd-${isa}" &&
     CCAPERF_SIMD="${isa}" CCAPERF_HWC=sim \
     CCAPERF_RANKS=2 CCAPERF_STEPS=2 "${FIG01}" >/dev/null)
  done
  python3 - "${SMOKE_DIR}" <<'PY'
import filecmp, glob, os, sys

smoke = sys.argv[1]
ref = sorted(glob.glob(os.path.join(smoke, "simd-scalar", "bench_out", "figs",
                                    "fig01_density.rank*.csv")))
assert ref, "scalar fig01 run wrote no density CSVs"
for isa in ("avx2", "native"):
    other = sorted(glob.glob(os.path.join(smoke, f"simd-{isa}", "bench_out",
                                          "figs", "fig01_density.rank*.csv")))
    assert len(other) == len(ref), (isa, len(other), len(ref))
    for pr, po in zip(ref, other):
        assert os.path.basename(pr) == os.path.basename(po), (pr, po)
        assert filecmp.cmp(pr, po, shallow=False), \
            f"density CSV differs between scalar and {isa}: {po}"
print(f"simd matrix: {len(ref)} density CSVs byte-identical across "
      "scalar/avx2/native dispatch")
PY
  echo "simd matrix: OK"
fi

if want prediction-gate; then
  echo "== prediction gate (pattern-model train/predict/validate, DESIGN.md §13) =="
  # Closes the predict/validate loop for real: calibrate the fig01 pattern
  # tree on the small training grid, predict held-out (ranks, threads, Q)
  # points, run them, and gate the relative errors against
  # bench/baselines/prediction.json (<= 25% per point, <= 10% median).
  # The bench also self-gates, so a bare local run fails loudly too.
  cmake -B "${BUILD_DIR}" -S . >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_ablation_prediction
  PRED_BIN="$(cd "${BUILD_DIR}/bench" && pwd)/bench_ablation_prediction"
  PRED_DIR=$(mktemp -d "${TMPDIR:-/tmp}/ccaperf-pred-gate.XXXXXX")
  (cd "${PRED_DIR}" && "${PRED_BIN}")
  python3 scripts/bench_gate.py --bench-dir "${PRED_DIR}/bench_out" \
    --only prediction --out "${PRED_DIR}/BENCH_prediction.json"
  rm -rf "${PRED_DIR}"
  echo "prediction gate: OK"
fi

if want hub-soak; then
  echo "== hub soak (64 concurrent mixed sessions through the TelemetryHub) =="
  # The multi-tenant telemetry service (DESIGN.md §14) under load: ramp to
  # 64 concurrent AMR + LU sessions (mixed ranks/threads/fault plans), gate
  # zero cross-session row leakage (every retained line carries its own
  # session marker), per-session physics byte-identical to solo runs,
  # bounded hub memory with exact drop accounting, and a parseable live
  # aggregate stream; then gate the soak's throughput/identity series
  # against bench/baselines/hub.json.
  cmake -B "${BUILD_DIR}" -S . >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_ablation_hub
  HUB_BIN="$(cd "${BUILD_DIR}/bench" && pwd)/bench_ablation_hub"
  HUB_DIR=$(mktemp -d "${TMPDIR:-/tmp}/ccaperf-hub-soak.XXXXXX")
  (cd "${HUB_DIR}" && "${HUB_BIN}" | tee hub_soak.out)
  grep -q "hub soak: OK" "${HUB_DIR}/hub_soak.out"
  python3 - "${HUB_DIR}" <<'PY'
import json, os, sys

hub = sys.argv[1]
path = os.path.join(hub, "bench_out", "hub_aggregate.jsonl")
lines = [json.loads(l) for l in open(path)]
assert lines, "hub aggregate stream is empty"
for l in lines:
    for key in ("t_us", "sessions_open", "drained", "dropped_ring",
                "bytes_retained", "bytes_peak", "scenarios"):
        assert key in l, f"aggregate line missing {key}: {l}"
last = lines[-1]
assert last["drained"] >= last["dropped_evicted"], last
scen = [l["scenarios"] for l in lines if l["scenarios"]]
assert any("amr" in s for s in scen), "no amr sessions in aggregate stream"
assert any("lu" in s for s in scen), "no lu sessions in aggregate stream"
print(f"hub aggregate: {len(lines)} lines parse; final drained "
      f"{last['drained']}, peak {last['bytes_peak']} bytes")
PY
  python3 scripts/bench_gate.py --bench-dir "${HUB_DIR}/bench_out" \
    --only hub --out "${HUB_DIR}/BENCH_hub.json"
  rm -rf "${HUB_DIR}"
  echo "hub soak: OK"
fi

if want tsan; then
  echo "== thread-sanitized concurrency suites (${TSAN_DIR}) =="
  # Lock-ordering-sensitive paths: the mpp fault layer (indexed fault
  # queues, dedupe windows under the mailbox lock), the tree collectives
  # (per-rank hop slots at 64/129 ranks), the sharded load balancer, the
  # threaded-rank layer (work-stealing pool, sharded registries,
  # lane-dispatched monitor, multi-threaded kernels), and the telemetry
  # hub (shard rings under concurrent publishers racing the drainer
  # ServiceThread).
  cmake -B "${TSAN_DIR}" -S . -DCCAPERF_SANITIZE=thread >/dev/null
  cmake --build "${TSAN_DIR}" -j "${JOBS}" \
    --target test_mpp test_amr test_support test_core test_euler test_tau \
             test_telemetry_hub
  "${TSAN_DIR}/tests/mpp/test_mpp" \
    --gtest_filter='FaultInjection.*:Recovery.*:*TreeCollectivesAtScale.*:DedupeAtScale.*'
  "${TSAN_DIR}/tests/amr/test_amr" \
    --gtest_filter='ExchangeFaults.*:*DistributedBalance*'
  "${TSAN_DIR}/tests/support/test_support" \
    --gtest_filter='ThreadPool.*:ServiceThread.*'
  "${TSAN_DIR}/tests/core/test_core" \
    --gtest_filter='ThreadedMonitor.*:ThreadedGovernor.*'
  "${TSAN_DIR}/tests/core/test_telemetry_hub"
  "${TSAN_DIR}/tests/euler/test_euler" \
    --gtest_filter='KernelsMt.*:SimdDispatch.*:SimdKernels.*'
  "${TSAN_DIR}/tests/tau/test_tau" --gtest_filter='RegistryShards.*'
fi

if want asan; then
  echo "== address-sanitized measurement suites (${ASAN_DIR}) =="
  cmake -B "${ASAN_DIR}" -S . -DCCAPERF_SANITIZE=address >/dev/null
  cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_tau test_core
  "${ASAN_DIR}/tests/tau/test_tau"
  "${ASAN_DIR}/tests/core/test_core"
fi

echo "stages [${STAGES}]: OK"
