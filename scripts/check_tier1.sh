#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): configure + build + run every `tier1`-labeled
# ctest suite, then rebuild the measurement core (mastermind + tau suites)
# under AddressSanitizer and run those two binaries. Intended for CI and
# for a quick local pre-push check:
#
#   scripts/check_tier1.sh            # build/ + build-asan/
#   BUILD_DIR=mybuild scripts/check_tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_DIR=${ASAN_DIR:-build-asan}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "== tier-1 suites (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"

echo "== trace pipeline smoke (2-rank fig01, CCAPERF_TRACE) =="
# End-to-end cross-rank tracing: the binary exits nonzero on an unbalanced
# or flow-unmatched trace, and the merged JSON must parse.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_fig01_simulation
FIG01="$(cd "${BUILD_DIR}/bench" && pwd)/bench_fig01_simulation"
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/ccaperf-trace-smoke.XXXXXX")
trap 'rm -rf "${SMOKE_DIR}"' EXIT
(cd "${SMOKE_DIR}" &&
 CCAPERF_TRACE=trace.json CCAPERF_RANKS=2 CCAPERF_STEPS=2 "${FIG01}" >/dev/null)
if command -v python3 >/dev/null; then
  python3 -m json.tool "${SMOKE_DIR}/trace.json" >/dev/null
  python3 -c 'import json,sys
for p in sys.argv[1:]:
    [json.loads(l) for l in open(p)]' "${SMOKE_DIR}"/telemetry.rank*.jsonl
fi
echo "trace smoke: OK"

echo "== address-sanitized measurement suites (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S . -DCCAPERF_SANITIZE=address >/dev/null
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_tau test_core
"${ASAN_DIR}/tests/tau/test_tau"
"${ASAN_DIR}/tests/core/test_core"

echo "tier1 + asan: OK"
