#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): configure + build + run every `tier1`-labeled
# ctest suite, then rebuild the measurement core (mastermind + tau suites)
# under AddressSanitizer and run those two binaries. Intended for CI and
# for a quick local pre-push check:
#
#   scripts/check_tier1.sh            # build/ + build-asan/
#   BUILD_DIR=mybuild scripts/check_tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_DIR=${ASAN_DIR:-build-asan}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "== tier-1 suites (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"

echo "== address-sanitized measurement suites (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S . -DCCAPERF_SANITIZE=address >/dev/null
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_tau test_core
"${ASAN_DIR}/tests/tau/test_tau"
"${ASAN_DIR}/tests/core/test_core"

echo "tier1 + asan: OK"
