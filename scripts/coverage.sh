#!/usr/bin/env bash
# Line-coverage report for the tier-1 suites, using plain gcov (no gcovr /
# lcov dependency): configure with CCAPERF_COVERAGE=ON, run the tier-1
# ctest label, then aggregate gcov's JSON intermediate format into a
# per-directory line-coverage table.
#
#   scripts/coverage.sh             # build-cov/
#   COV_DIR=mycov scripts/coverage.sh
#   COV_MIN=95 scripts/coverage.sh  # fail if total line coverage drops below
#   COV_JSON=coverage.json scripts/coverage.sh   # machine-readable report
#
# The baseline numbers live in EXPERIMENTS.md; regenerate them with this
# script after touching the communication or measurement layers.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO=$(pwd)

COV_DIR=${COV_DIR:-build-cov}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
export COV_MIN=${COV_MIN:-0}
export COV_JSON=${COV_JSON:-}

echo "== coverage build (${COV_DIR}) =="
cmake -B "${COV_DIR}" -S . -DCCAPERF_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build "${COV_DIR}" -j "${JOBS}"

echo "== tier-1 suites under instrumentation =="
find "${COV_DIR}" -name '*.gcda' -delete
# --coverage forces -O0, which can trip the tightest timing-attribution
# asserts (they are gated at full strictness by check_tier1.sh on the
# regular build). The suites still execute, so the line-coverage data is
# valid: warn and keep going.
if ! ctest --test-dir "${COV_DIR}" -L tier1 --output-on-failure -j "${JOBS}"; then
  echo "WARNING: some suites failed under -O0 instrumentation (timing" \
       "asserts); coverage data below still reflects the full run" >&2
fi

echo "== gcov aggregation =="
GCOV_OUT=$(mktemp -d "${TMPDIR:-/tmp}/ccaperf-coverage.XXXXXX")
trap 'rm -rf "${GCOV_OUT}"' EXIT
# gcov drops one .gcov.json.gz per object file into the cwd.
(cd "${GCOV_OUT}" &&
 find "${REPO}/${COV_DIR}" -name '*.gcda' -print0 |
 xargs -0 gcov --json-format >/dev/null)

python3 - "${GCOV_OUT}" "${REPO}" <<'PY'
import glob, gzip, json, os, sys

gcov_dir, repo = sys.argv[1], sys.argv[2]
# (relative source file) -> {line_number: hit?}; merged across the many
# translation units that each header is compiled into.
lines = {}
for path in glob.glob(os.path.join(gcov_dir, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as f:
        data = json.load(f)
    for fentry in data.get("files", []):
        src = fentry["file"]
        if not os.path.isabs(src):
            src = os.path.normpath(os.path.join(data.get("current_working_directory", ""), src))
        src = os.path.normpath(src)
        try:
            rel = os.path.relpath(src, repo)
        except ValueError:
            continue
        if rel.startswith(".."):
            continue  # system headers
        if not (rel.startswith("src/") or rel.startswith("tests/") or rel.startswith("bench/")):
            continue
        per = lines.setdefault(rel, {})
        for ln in fentry.get("lines", []):
            n = ln["line_number"]
            per[n] = per.get(n, False) or ln["count"] > 0

def bucket(rel):
    parts = rel.split(os.sep)
    return os.sep.join(parts[:2]) if len(parts) > 1 else parts[0]

agg = {}
for rel, per in lines.items():
    total, hit = len(per), sum(per.values())
    b = agg.setdefault(bucket(rel), [0, 0])
    b[0] += total
    b[1] += hit

print(f"{'directory':<24}{'lines':>8}{'covered':>9}{'pct':>8}")
gt = gh = 0
dirs = {}
for d in sorted(agg):
    total, hit = agg[d]
    gt += total
    gh += hit
    dirs[d] = {"lines": total, "covered": hit, "pct": 100.0 * hit / total}
    print(f"{d:<24}{total:>8}{hit:>9}{100.0 * hit / total:>7.1f}%")
total_pct = 100.0 * gh / gt
print(f"{'TOTAL':<24}{gt:>8}{gh:>9}{total_pct:>7.1f}%")

cov_json = os.environ.get("COV_JSON", "")
if cov_json:
    with open(os.path.join(repo, cov_json), "w") as f:
        json.dump({"total_pct": total_pct, "lines": gt, "covered": gh,
                   "directories": dirs}, f, indent=2)
        f.write("\n")
    print(f"coverage report -> {cov_json}")

cov_min = float(os.environ.get("COV_MIN", "0") or "0")
if total_pct < cov_min:
    print(f"COVERAGE GATE FAILED: {total_pct:.1f}% < COV_MIN={cov_min:g}%")
    sys.exit(1)
PY
echo "coverage: OK"
