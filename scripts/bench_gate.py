#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the JSON series the ablation benches write under bench_out/
against the checked-in baselines in bench/baselines/, and fails when a
gated metric regresses by more than the tolerance (default 25% — wide
enough to absorb shared-runner noise, tight enough to catch a real
perf cliff or a broken determinism bit).

Each baseline file bench/baselines/<name>.json holds a list of

    {"metric": "...", "value": <number>, "higher_is_better": true|false}

with an optional per-metric "tolerance" overriding the global one —
invariant metrics (e.g. the hub soak's identity_ok flag, or its memory
bound, which the bench already caps) gate at 0.0 while throughput
metrics keep the wide shared-runner default. Each file is compared
against bench_out/<name>.json (the bench's
[{"name", "metric", "value"}, ...] output). The verdicts are written to
a machine-readable report (default BENCH_tier1.json) for the CI artifact.

Usage:
    scripts/bench_gate.py [--bench-dir bench_out] [--baseline-dir bench/baselines]
                          [--out BENCH_tier1.json] [--tolerance 0.25]
                          [--only <name> ...]

--only restricts the gate to the named baseline(s) (repeatable), so a CI
stage can gate just the bench it ran without requiring every other
bench's output to exist.
"""

import argparse
import glob
import json
import os
import sys


def load_bench_series(path):
    """bench_out/<name>.json -> {metric: value}."""
    with open(path) as f:
        return {e["metric"]: e["value"] for e in json.load(f)}


def check_metric(measured, baseline, higher_is_better, tolerance):
    """Returns (ok, ratio) where ratio is measured/baseline (inf for 0-div)."""
    if baseline == 0:
        return measured == 0, float("inf") if measured else 1.0
    ratio = measured / baseline
    if higher_is_better:
        return ratio >= 1.0 - tolerance, ratio
    return ratio <= 1.0 + tolerance, ratio


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-dir", default="bench_out")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--out", default="BENCH_tier1.json")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--only", action="append", default=None, metavar="NAME",
                    help="gate only this baseline (repeatable)")
    args = ap.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "*.json")))
    if args.only:
        wanted = set(args.only)
        baselines = [b for b in baselines
                     if os.path.splitext(os.path.basename(b))[0] in wanted]
        found = {os.path.splitext(os.path.basename(b))[0] for b in baselines}
        for name in sorted(wanted - found):
            print(f"bench_gate: no baseline named {name!r} under "
                  f"{args.baseline_dir}", file=sys.stderr)
            return 2
    if not baselines:
        print(f"bench_gate: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    results = []
    for base_path in baselines:
        name = os.path.splitext(os.path.basename(base_path))[0]
        bench_path = os.path.join(args.bench_dir, name + ".json")
        with open(base_path) as f:
            gated = json.load(f)
        if not os.path.exists(bench_path):
            for g in gated:
                results.append({"bench": name, "metric": g["metric"],
                                "status": "missing",
                                "baseline": g["value"], "measured": None,
                                "higher_is_better": g["higher_is_better"],
                                "ratio": None, "ok": False})
            continue
        series = load_bench_series(bench_path)
        for g in gated:
            metric = g["metric"]
            if metric not in series:
                results.append({"bench": name, "metric": metric,
                                "status": "missing",
                                "baseline": g["value"], "measured": None,
                                "higher_is_better": g["higher_is_better"],
                                "ratio": None, "ok": False})
                continue
            tol = g.get("tolerance", args.tolerance)
            ok, ratio = check_metric(series[metric], g["value"],
                                     g["higher_is_better"], tol)
            results.append({"bench": name, "metric": metric,
                            "status": "ok" if ok else "regressed",
                            "baseline": g["value"], "measured": series[metric],
                            "higher_is_better": g["higher_is_better"],
                            "tolerance": tol,
                            "ratio": ratio, "ok": ok})

    all_ok = all(r["ok"] for r in results)
    report = {"tolerance": args.tolerance, "ok": all_ok, "results": results}
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    width = max(len(f"{r['bench']}.{r['metric']}") for r in results)
    for r in results:
        tag = "OK  " if r["ok"] else ("MISS" if r["status"] == "missing" else "FAIL")
        measured = "absent" if r["measured"] is None else f"{r['measured']:g}"
        arrow = "higher=better" if r["higher_is_better"] else "lower=better"
        print(f"[{tag}] {r['bench'] + '.' + r['metric']:<{width}}  "
              f"baseline {r['baseline']:g}  measured {measured}  ({arrow})")
    print(f"bench_gate: {'OK' if all_ok else 'REGRESSION'} "
          f"({sum(r['ok'] for r in results)}/{len(results)} metrics within "
          f"{args.tolerance:.0%}), report -> {args.out}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
